package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/churn"
	"repro/internal/cid"
	"repro/internal/peer"
	"repro/internal/routing"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/testnet"
)

// ScenarioConfig tunes the churn-scenario engine.
type ScenarioConfig struct {
	// Window is the simulated span the churn timeline covers.
	Window time.Duration
	// Amplitude scales the timeline's churn intensity (1 = the paper's
	// Fig 8 session/gap model).
	Amplitude float64
	// Seed drives timeline generation.
	Seed int64
	// NATSessions gives undialable peers ordinary churned sessions
	// (online, originating traffic, refusing inbound dials) instead of
	// keeping them permanently absent — the Fig 7 reachability-mix
	// scenarios pair it with testnet.Config.ReachabilityMix.
	NATSessions bool
}

// PhaseOutcome is what one workload phase reports back to the runner.
type PhaseOutcome struct {
	Ops      int // operations attempted (publishes, retrievals, republishes)
	Failures int
	Routed   int // retrievals whose Bitswap session was router-fed
}

// PhaseInfo is what the runner hands a workload phase: the tick's
// instant and the liveness/health it sampled right after applying the
// timeline — the single source of truth, so phases never re-sample.
type PhaseInfo struct {
	Now           time.Time
	Offset        time.Duration
	Online        int
	SnapshotStale float64
	IndexerHit    float64
	// LossRate is the network-default link-loss probability in force
	// when the phase starts; Partitioned is how many regions the current
	// partition covers (0 = whole network).
	LossRate    float64
	Partitioned int
}

// PhaseSample is one row of the scenario time series: the network and
// router-health state at a phase's tick plus what the workload did and
// what it cost the network.
type PhaseSample struct {
	Phase  string
	Offset time.Duration // into the timeline window
	Online int           // server peers the timeline has online

	// SnapshotStale is the fraction of observed accelerated-router
	// snapshot entries currently offline (NaN when none registered).
	SnapshotStale float64
	// IndexerHit is the fraction of tracked roots some online observed
	// indexer responsible for the root's shard still holds an unexpired
	// record for (NaN when none registered).
	IndexerHit float64
	// ShardHits is the per-shard indexer hit rate at the tick: for each
	// shard, the fraction of its tracked roots covered by an online
	// replica. Nil when no sharded fleet is observed; NaN entries mark
	// shards with no tracked roots.
	ShardHits []float64
	// ReplicaUp is the fraction of observed indexer replicas currently
	// online — the availability lever indexer-outage scenarios pull
	// (NaN when no indexers are observed).
	ReplicaUp float64

	// LossRate is the network-default link-loss probability after the
	// phase ran (so a fault-transition phase's own row shows the state
	// it installed); Partitioned is how many regions the partition
	// covers then (0 = whole network).
	LossRate    float64
	Partitioned int

	// DiscoverP99 is the 99th-percentile sim-accurate duration of the
	// "discover" trace span across the retrievals traced in this phase,
	// in seconds (NaN when no observed recorder traced a retrieval).
	DiscoverP99 float64
	// FirstHopShare is the fraction of traced retrievals whose discover
	// phase resolved a provider within at most one lookup RPC (NaN when
	// none were traced).
	FirstHopShare float64
	// TracedOps is how many traces the observed recorders produced
	// during the phase (all root operations, not just retrievals).
	TracedOps int

	// Budget is the network-wide RPC spend during this phase, by
	// category.
	Budget simnet.Budget

	PhaseOutcome
}

// ShardHitMean averages the per-shard hit rates, skipping shards with
// no tracked roots; NaN when no sharded fleet is observed.
func (ps PhaseSample) ShardHitMean() float64 {
	sum, n := 0.0, 0
	for _, h := range ps.ShardHits {
		if !math.IsNaN(h) {
			sum += h
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// scheduledPhase is one workload phase awaiting its tick.
type scheduledPhase struct {
	name   string
	offset time.Duration
	run    func(ctx context.Context, info PhaseInfo) PhaseOutcome
}

// ScenarioRunner drives a testnet through a churn timeline: it owns the
// simulated clock, applies per-tick liveness from PeerTimeline.OnlineAt,
// runs the scheduled publish/retrieve/republish/refresh phases in
// timeline order, and samples router health plus the network-wide RPC
// budget at every tick. It replaces the one-shot offline slice the
// routing comparison used to churn with.
type ScenarioRunner struct {
	TN    *testnet.Testnet
	TL    *churn.Timeline
	Clock *simtime.Clock
	Start time.Time

	accels   []*routing.AcceleratedRouter
	ixSet    *routing.IndexerSet
	indexers []*routing.Indexer
	ixShard  map[peer.ID]int // observed indexer -> shard it serves
	roots    []cid.Cid
	recs     []*telemetry.Recorder
	traces   []*telemetry.Trace

	phases  []scheduledPhase
	samples []PhaseSample
}

// NewScenarioRunner generates a churn timeline for the testnet's
// population and binds the runner to the testnet's clock. The testnet
// must have been built with Config.Clock.
func NewScenarioRunner(tn *testnet.Testnet, cfg ScenarioConfig) *ScenarioRunner {
	if tn.Clock == nil {
		panic("experiments: ScenarioRunner requires a testnet built with Config.Clock")
	}
	if cfg.Window <= 0 {
		cfg.Window = 24 * time.Hour
	}
	start := tn.Clock.Now()
	tl := churn.GenerateTimeline(tn.Pop, churn.TimelineConfig{
		Start: start,
		// An hour of margin past the window: generated sessions clip at
		// the timeline end, so sampling liveness exactly at the final
		// tick would otherwise find an empty network.
		Duration:    cfg.Window + time.Hour,
		Seed:        cfg.Seed,
		Amplitude:   cfg.Amplitude,
		NATSessions: cfg.NATSessions,
	})
	return &ScenarioRunner{TN: tn, TL: tl, Clock: tn.Clock, Start: start}
}

// ObserveAccelerated registers accelerated routers whose snapshot
// staleness the per-tick health sample averages.
func (s *ScenarioRunner) ObserveAccelerated(rs ...*routing.AcceleratedRouter) {
	for _, r := range rs {
		if r != nil {
			s.accels = append(s.accels, r)
		}
	}
}

// ObserveIndexer registers an indexer whose record coverage the
// per-tick health sample reports, and which the runner GCs and
// gossips every tick while it is online.
func (s *ScenarioRunner) ObserveIndexer(ix *routing.Indexer) {
	if ix != nil {
		s.indexers = append(s.indexers, ix)
	}
}

// ObserveIndexerFleet registers a sharded indexer deployment: the
// topology clients route by plus its indexer nodes. Health samples
// then report per-shard hit rates and replica availability, and a
// root only counts as covered when an online replica of its own shard
// holds the record.
func (s *ScenarioRunner) ObserveIndexerFleet(set *routing.IndexerSet, nodes ...*routing.Indexer) {
	s.ixSet = set
	s.ixShard = make(map[peer.ID]int)
	for sh := 0; sh < set.Shards(); sh++ {
		for _, pi := range set.Replicas(sh) {
			s.ixShard[pi.ID] = sh
		}
	}
	for _, ix := range nodes {
		s.ObserveIndexer(ix)
	}
}

// TrackRoots adds published roots to the indexer hit-rate denominator.
func (s *ScenarioRunner) TrackRoots(cs ...cid.Cid) { s.roots = append(s.roots, cs...) }

// ObserveTelemetry registers node recorders whose traces the runner
// drains at every tick: each phase sample reports span-derived columns
// (discover p99, first-hop share) over exactly the traces that phase
// produced, and the full set accumulates for Traces.
func (s *ScenarioRunner) ObserveTelemetry(recs ...*telemetry.Recorder) {
	for _, r := range recs {
		if r != nil {
			s.recs = append(s.recs, r)
		}
	}
}

// drainTraces empties every observed recorder's trace ring.
func (s *ScenarioRunner) drainTraces() []*telemetry.Trace {
	var out []*telemetry.Trace
	for _, r := range s.recs {
		out = append(out, r.Drain()...)
	}
	return out
}

// Traces returns every trace the observed recorders produced during
// the scheduled phases, in phase order.
func (s *ScenarioRunner) Traces() []*telemetry.Trace { return s.traces }

// Schedule adds a workload phase at the given offset into the window.
// Phases run in offset order (insertion order on ties) when Run is
// called; run may be nil for a pure sampling tick.
func (s *ScenarioRunner) Schedule(name string, offset time.Duration, run func(ctx context.Context, info PhaseInfo) PhaseOutcome) {
	s.phases = append(s.phases, scheduledPhase{name: name, offset: offset, run: run})
}

// Run executes the schedule and returns the collected time series.
//
// In sweep mode (a testnet built with Config.Clock alone) each phase
// advances the clock to its tick and applies timeline liveness to the
// whole population. In event-driven mode (Config.EventDriven — the
// testnet carries a simtime.Scheduler) the runner becomes the
// scheduler's root goroutine: phase boundaries are SleepUntil timer
// events, per-peer churn transitions are chained events registered by
// ScheduleTimeline, and indexer maintenance runs at each phase wake —
// everything on the one priority queue, with virtual time jumping
// between events. Both paths share runPhase, so the per-phase health,
// workload and Budget rows stay semantically identical; event-driven
// mode is what lets paper-scale (20k+ peer) populations replay a full
// churn window in seconds of wall clock. A scheduler cannot be reused,
// so an event-driven runner's Run can only be called once.
func (s *ScenarioRunner) Run(ctx context.Context) []PhaseSample {
	sort.SliceStable(s.phases, func(a, b int) bool {
		return s.phases[a].offset < s.phases[b].offset
	})
	// Traces from setup work before the schedule (bootstrap publishes,
	// warm-up crawls) are not any phase's: drop them so the first
	// phase's span columns cover only its own operations.
	s.drainTraces()
	if sched := s.TN.Sched; sched != nil {
		until := s.Start
		if n := len(s.phases); n > 0 {
			until = s.Start.Add(s.phases[n-1].offset)
		}
		sched.Run(ctx, func(rctx context.Context) {
			// One chained transition event per peer instead of a
			// whole-population sweep per tick. Transitions at a phase's
			// exact instant fire before the phase's timer wake, matching
			// the sweep path's half-open churn intervals.
			s.TN.ScheduleTimeline(s.TL, s.Start, until)
			for _, ph := range s.phases {
				now := s.Start.Add(ph.offset)
				if sched.SleepUntil(rctx, now) != nil {
					return
				}
				s.runPhase(rctx, ph, now, s.TL.OnlineCount(now))
			}
		})
		return s.samples
	}
	for _, ph := range s.phases {
		now := s.Start.Add(ph.offset)
		s.Clock.Set(now)
		online := s.TN.ApplyTimeline(s.TL, now)
		s.runPhase(ctx, ph, now, online)
	}
	return s.samples
}

// runPhase executes one phase at its tick — indexer background duties,
// the health sample, the workload, the trace drain and the budget row —
// identically for the sweep and event-driven paths.
func (s *ScenarioRunner) runPhase(ctx context.Context, ph scheduledPhase, now time.Time, online int) {
	before := s.TN.Net.Budget()
	// Indexer background duties run between liveness and health
	// sampling, so a replica repaired by gossip counts as covered at
	// this tick and the gossip RPCs land in this phase's budget row.
	s.maintainIndexers(ctx)

	sample := PhaseSample{
		Phase:         ph.name,
		Offset:        ph.offset,
		Online:        online,
		SnapshotStale: s.SnapshotStaleness(),
		IndexerHit:    s.IndexerHitRate(),
		ShardHits:     s.ShardHitRates(),
		ReplicaUp:     s.ReplicaAvailability(),
	}
	if ph.run != nil {
		sample.PhaseOutcome = ph.run(ctx, PhaseInfo{
			Now:           now,
			Offset:        ph.offset,
			Online:        online,
			SnapshotStale: sample.SnapshotStale,
			IndexerHit:    sample.IndexerHit,
			LossRate:      s.TN.Net.Faults().LossRate,
			Partitioned:   len(s.TN.Net.PartitionedRegions()),
		})
	}
	// Fault state is sampled after the workload so a fault-transition
	// phase (loss->10%, partition, heal) reports the state it installed,
	// and the following workload ticks inherit it unchanged.
	sample.LossRate = s.TN.Net.Faults().LossRate
	sample.Partitioned = len(s.TN.Net.PartitionedRegions())
	phaseTraces := s.drainTraces()
	s.traces = append(s.traces, phaseTraces...)
	sample.TracedOps = len(phaseTraces)
	sample.FirstHopShare = telemetry.FirstHopShare(phaseTraces)
	if math.IsNaN(sample.FirstHopShare) {
		// No traced retrieval carried a discover span this phase; a
		// 0.00s p99 would read as a measurement, not an absence.
		sample.DiscoverP99 = math.NaN()
	} else {
		sample.DiscoverP99 = telemetry.DiscoverP99(phaseTraces).Seconds()
	}
	sample.Budget = s.TN.Net.Budget().Sub(before)
	s.samples = append(s.samples, sample)
}

// maintainIndexers runs the indexer background duties at a tick: every
// online observed indexer drops its expired records (so ProviderStore
// stays bounded by one TTL window of publishes) and pushes one
// anti-entropy gossip round to its replica group (so a replica that
// was offline for a publish window converges back to its shard).
// Offline indexers do neither — they are gone until the outage lifts.
func (s *ScenarioRunner) maintainIndexers(ctx context.Context) {
	for _, ix := range s.indexers {
		if !s.TN.Net.Online(ix.ID()) {
			continue
		}
		ix.GC()
		ix.Gossip(ctx)
	}
}

// Samples returns the time series collected so far.
func (s *ScenarioRunner) Samples() []PhaseSample { return s.samples }

// SnapshotStaleness returns the fraction of observed accelerated
// snapshot entries currently offline, or NaN when no router (or only
// empty snapshots) are registered.
func (s *ScenarioRunner) SnapshotStaleness() float64 {
	total, stale := 0, 0
	for _, r := range s.accels {
		for _, pi := range r.Snapshot() {
			total++
			if !s.TN.Net.Online(pi.ID) {
				stale++
			}
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(stale) / float64(total)
}

// IndexerHitRate returns the fraction of tracked roots covered by the
// observed indexers — an online indexer responsible for the root's
// shard holding an unexpired record — or NaN when no indexer or no
// roots are registered. Expiry follows the scenario clock, so the rate
// decays as the staleness window outgrows the record TTL without a
// republish; availability follows the outage levers, so it also drops
// when a shard loses all its replicas.
func (s *ScenarioRunner) IndexerHitRate() float64 {
	if len(s.indexers) == 0 || len(s.roots) == 0 {
		return math.NaN()
	}
	hits := 0
	for _, c := range s.roots {
		if s.rootCovered(c) {
			hits++
		}
	}
	return float64(hits) / float64(len(s.roots))
}

// rootCovered reports whether some online observed indexer responsible
// for c's shard holds an unexpired record for it. Without a sharded
// fleet every observed indexer is responsible for every root.
func (s *ScenarioRunner) rootCovered(c cid.Cid) bool {
	shard := -1
	if s.ixSet != nil {
		shard = s.ixSet.ShardOf(c)
	}
	for _, ix := range s.indexers {
		if shard >= 0 {
			if sh, ok := s.ixShard[ix.ID()]; !ok || sh != shard {
				continue
			}
		}
		if s.TN.Net.Online(ix.ID()) && ix.HasProvider(c) {
			return true
		}
	}
	return false
}

// ShardHitRates returns the per-shard hit rate over tracked roots, or
// nil when no sharded fleet is observed. Shards with no tracked roots
// report NaN.
func (s *ScenarioRunner) ShardHitRates() []float64 {
	if s.ixSet == nil || s.ixSet.Shards() == 0 || len(s.roots) == 0 || len(s.indexers) == 0 {
		return nil
	}
	hits := make([]int, s.ixSet.Shards())
	counts := make([]int, s.ixSet.Shards())
	for _, c := range s.roots {
		sh := s.ixSet.ShardOf(c)
		counts[sh]++
		if s.rootCovered(c) {
			hits[sh]++
		}
	}
	out := make([]float64, s.ixSet.Shards())
	for i := range out {
		if counts[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = float64(hits[i]) / float64(counts[i])
		}
	}
	return out
}

// ReplicaAvailability returns the fraction of observed indexer
// replicas currently online, or NaN when none are observed.
func (s *ScenarioRunner) ReplicaAvailability() float64 {
	if len(s.indexers) == 0 {
		return math.NaN()
	}
	up := 0
	for _, ix := range s.indexers {
		if s.TN.Net.Online(ix.ID()) {
			up++
		}
	}
	return float64(up) / float64(len(s.indexers))
}

// fmtOffset renders a phase offset compactly ("+6h", "+90m", "+12h30m").
func fmtOffset(d time.Duration) string {
	d = d.Round(time.Minute)
	h := d / time.Hour
	m := (d % time.Hour) / time.Minute
	switch {
	case h == 0:
		return fmt.Sprintf("+%dm", m)
	case m == 0:
		return fmt.Sprintf("+%dh", h)
	default:
		return fmt.Sprintf("+%dh%02dm", h, m)
	}
}

// fmtSecs renders a span-derived duration in seconds, "-" for NaN.
func fmtSecs(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2fs", v)
}

// fmtHealth renders a health fraction as a percentage, "-" for NaN.
func fmtHealth(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*v)
}
