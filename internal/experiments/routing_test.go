package experiments

import (
	"strings"
	"testing"

	"repro/internal/routing"
)

// TestRoutingComparison runs a small four-router comparison and checks
// the headline property the subsystem exists to demonstrate: the
// accelerated one-hop client resolves providers with measurably fewer
// routing messages than the baseline DHT walk, on the same network,
// under the same churn.
func TestRoutingComparison(t *testing.T) {
	cfg := RoutingConfig{NetworkSize: 180, Objects: 3, Scale: 0.0005, Seed: 42}
	if testing.Short() {
		// Keep the headline property exercised in -short (race) CI runs,
		// on a smaller churned network.
		cfg.NetworkSize = 100
		cfg.Objects = 2
	}
	res := RunRoutingComparison(cfg)
	if len(res.Routers) != 4 {
		t.Fatalf("measured %d routers, want 4", len(res.Routers))
	}
	for _, rp := range res.Routers {
		if rp.Publications == 0 || rp.Retrievals == 0 {
			t.Fatalf("%s: no operations ran", rp.Kind)
		}
		if rp.Failures > (rp.Publications+rp.Retrievals)/2 {
			t.Errorf("%s: %d failures out of %d ops", rp.Kind, rp.Failures, rp.Publications+rp.Retrievals)
		}
	}
	dht := res.Router(routing.KindDHT)
	accel := res.Router(routing.KindAccelerated)
	if dht.RetrMsgs.Len() == 0 || accel.RetrMsgs.Len() == 0 {
		t.Fatal("missing retrieval message samples")
	}
	if accel.RetrMsgs.Mean() >= dht.RetrMsgs.Mean() {
		t.Errorf("accelerated used %.1f routing msgs per retrieval vs dht %.1f, want fewer",
			accel.RetrMsgs.Mean(), dht.RetrMsgs.Mean())
	}
	// The accelerated publish skips the walk entirely.
	if accel.PubMsgs.Mean() >= dht.PubMsgs.Mean() {
		t.Errorf("accelerated used %.1f msgs per publish vs dht %.1f, want fewer",
			accel.PubMsgs.Mean(), dht.PubMsgs.Mean())
	}
	// Session routing: the one-hop routers answer with known providers,
	// send targeted WANT-HAVEs and skip the broadcast, so they must
	// retrieve with strictly fewer WANT-HAVE messages than the baseline
	// broadcast on the same testnet.
	for _, kind := range []routing.Kind{routing.KindAccelerated, routing.KindIndexer} {
		rp := res.Router(kind)
		if rp.RetrWantHaves.Len() == 0 {
			t.Fatalf("%s: no WANT-HAVE samples", kind)
		}
		if rp.RetrWantHaves.Mean() >= dht.RetrWantHaves.Mean() {
			t.Errorf("%s sent %.1f WANT-HAVEs per retrieval vs dht broadcast %.1f, want strictly fewer",
				kind, rp.RetrWantHaves.Mean(), dht.RetrWantHaves.Mean())
		}
		if rp.RoutedSessions == 0 {
			t.Errorf("%s: no routed sessions despite router-known providers", kind)
		}
	}
	if dht.RoutedSessions != 0 {
		t.Errorf("dht baseline reported %d routed sessions, want 0 (it broadcasts)", dht.RoutedSessions)
	}
	for _, render := range []string{res.Table(), res.Summary()} {
		if !strings.Contains(render, "dht") || !strings.Contains(render, "accelerated") {
			t.Errorf("render missing router rows:\n%s", render)
		}
	}
}
