package experiments

import (
	"context"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/gwfleet"
	"repro/internal/telemetry"
	"repro/internal/testnet"
	"repro/internal/transport"
)

// TestFleetScenario pins the viral-CID flash crowd: the scenario runs
// event-driven with zero scheduler stalls, the fleet absorbs the 100x
// burst at >= 0.9 cache hit rate with sub-linear origin RPC
// amplification, and admission control visibly sheds instead of
// melting the origin. The full report is golden-pinned.
func TestFleetScenario(t *testing.T) {
	res := RunFleetScenario(FleetScenarioConfig{OriginDir: t.TempDir()})

	if res.SchedStalls != 0 {
		t.Errorf("scheduler stalls = %d, want 0 (a wait on the workload path escaped instrumentation)", res.SchedStalls)
	}
	if hr := res.Stats.CacheHitRate(); hr < 0.9 {
		t.Errorf("fleet cache hit rate = %.3f, want >= 0.9", hr)
	}
	if res.RequestAmp < 50 {
		t.Errorf("request amplification = %.1fx, want a real flash crowd (>= 50x)", res.RequestAmp)
	}
	if res.OriginRPCAmp >= res.RequestAmp/2 {
		t.Errorf("origin RPC amplification = %.1fx vs request amplification %.1fx, want sub-linear",
			res.OriginRPCAmp, res.RequestAmp)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(res.Phases))
	}
	viral := res.Phases[1]
	if viral.Stats.Shed == 0 {
		t.Error("viral phase shed nothing: admission control never engaged at 100x load")
	}
	if viral.Stats.SharedHits+viral.Stats.LocalHits+viral.Stats.NodeStore == 0 {
		t.Error("viral phase had no cache hits at any tier")
	}

	goldenCompare(t, "fleet_flash_crowd.golden", res.Report())
}

// TestFleetNegativeCache pins the fleet-wide negative cache against
// the network budget: a missing CID costs the fleet origin RPCs
// exactly once per TTL window no matter how many requests arrive, and
// a subsequent publish of the CID invalidates the entry immediately.
func TestFleetNegativeCache(t *testing.T) {
	const negTTL = time.Minute
	tn := testnet.Build(testnet.Config{
		N: 60, Seed: 31,
		FracDead: 1e-9, FracSlow: 1e-9, FracWSBroken: 1e-9,
		EventDriven: true,
	})
	gwNodes := tn.AddGatewayFleet(2, 40, nil)
	fleet := gwfleet.New(gwNodes, gwfleet.Config{
		NegativeTTL: negTTL,
		Time:        tn.Time,
		Registry:    telemetry.NewRegistry(),
	})

	// The content exists nowhere and was never published: only the data
	// is known, so the eventual publish below mints the same root CID.
	data := []byte("future content, not yet published anywhere")

	lookupsDuring := func(ctx context.Context, fn func()) int64 {
		before := tn.Net.Budget()
		fn()
		d := tn.Net.Budget().Sub(before)
		return d.Category(transport.CatLookup) + d.Category(transport.CatWant)
	}

	err := tn.Sched.Run(context.Background(), func(ctx context.Context) {
		scratch := tn.AddGatewayFleet(1, 50, nil)[0]
		root, err := scratch.Add(data)
		if err != nil {
			t.Errorf("scratch add: %v", err)
			return
		}
		req := gateway.Request{Cid: root, Time: tn.Time.Now()}

		// First request: the whole fleet pays exactly one origin attempt.
		var first gwfleet.Response
		cost := lookupsDuring(ctx, func() { first = fleet.Fetch(ctx, req) })
		if first.Err == nil {
			t.Error("fetch of unpublished CID succeeded")
		}
		if first.NegativeHit {
			t.Error("first fetch was a negative hit; want a real origin attempt")
		}
		if cost == 0 {
			t.Error("first fetch cost no origin RPCs; want a real lookup")
		}

		// Every further request inside the TTL window fails fast from the
		// shared negative cache: zero origin RPCs across the whole fleet.
		for i := 0; i < 5; i++ {
			var resp gwfleet.Response
			cost := lookupsDuring(ctx, func() { resp = fleet.Fetch(ctx, req) })
			if !resp.NegativeHit {
				t.Errorf("fetch %d inside TTL window: NegativeHit = false", i)
			}
			if cost != 0 {
				t.Errorf("fetch %d inside TTL window cost %d origin RPCs, want 0", i, cost)
			}
		}

		// Past the TTL the window closes: the next request pays one fresh
		// origin attempt.
		if err := tn.Time.Sleep(ctx, negTTL+time.Second); err != nil {
			return
		}
		var again gwfleet.Response
		cost = lookupsDuring(ctx, func() { again = fleet.Fetch(ctx, req) })
		if again.NegativeHit {
			t.Error("fetch after TTL expiry was a negative hit; want a fresh origin attempt")
		}
		if cost == 0 {
			t.Error("fetch after TTL expiry cost no origin RPCs")
		}

		// A publish through a fleet gateway invalidates the re-opened
		// window immediately: the content is retrievable right away, not
		// after the TTL drains.
		if !fleet.Shared().KnownMissing(root) {
			t.Error("negative window not re-opened after the expired-window fetch failed")
		}
		if _, err := fleet.Node(0).AddAndPublish(ctx, data); err != nil {
			t.Errorf("publish: %v", err)
		}
		if fleet.Shared().KnownMissing(root) {
			t.Error("publish did not invalidate the negative-cache entry")
		}
		resp := fleet.Fetch(ctx, req)
		if resp.Err != nil || resp.NegativeHit {
			t.Errorf("fetch after publish: err=%v negativeHit=%v, want served", resp.Err, resp.NegativeHit)
		}
	})
	if err != nil {
		t.Fatalf("scheduler run: %v", err)
	}
	if got := tn.Sched.Stalls(); got != 0 {
		t.Errorf("scheduler stalls = %d, want 0", got)
	}
}
