package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/churn"
	"repro/internal/crawler"
	"repro/internal/geo"
	"repro/internal/peer"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/swarm"
	"repro/internal/testnet"
	"repro/internal/wire"
)

// DeployConfig tunes the §5 deployment-scale analysis.
type DeployConfig struct {
	// PopulationSize scales the synthetic network (the paper observed
	// ~200k PeerIDs; default 20000 for the statistical analyses).
	PopulationSize int
	// CrawlNetworkSize is the (smaller) live network the §4.1 crawler
	// actually walks each epoch (default 800).
	CrawlNetworkSize int
	// CrawlEpochs and CrawlInterval drive the Fig 4a time series
	// (default 12 epochs, 30 simulated minutes apart as in §4.1).
	CrawlEpochs   int
	CrawlInterval time.Duration
	// Window is the churn observation window (default 24 h).
	Window time.Duration
	Scale  float64
	Seed   int64
}

func (c DeployConfig) withDefaults() DeployConfig {
	if c.PopulationSize <= 0 {
		c.PopulationSize = 20000
	}
	if c.CrawlNetworkSize <= 0 {
		c.CrawlNetworkSize = 800
	}
	if c.CrawlEpochs <= 0 {
		c.CrawlEpochs = 12
	}
	if c.CrawlInterval <= 0 {
		c.CrawlInterval = 30 * time.Minute
	}
	if c.Window <= 0 {
		c.Window = 24 * time.Hour
	}
	if c.Scale <= 0 {
		c.Scale = 0.0005
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// CrawlEpoch is one Fig 4a data point.
type CrawlEpoch struct {
	Time       time.Time
	Total      int
	Dialable   int
	Undialable int
}

// DeployResults aggregates the §5 analyses.
type DeployResults struct {
	Cfg      DeployConfig
	Pop      *geo.Population
	Timeline *churn.Timeline // Window-long: Fig 4a / Fig 8
	Epochs   []CrawlEpoch    // Fig 4a
}

// RunDeployment generates the population, its churn timeline, and runs
// repeated crawls of a live sub-network.
func RunDeployment(cfg DeployConfig) *DeployResults {
	cfg = cfg.withDefaults()
	popCfg := geo.DefaultPopulationConfig(cfg.PopulationSize)
	popCfg.Seed = cfg.Seed
	pop := geo.GeneratePopulation(popCfg)

	epochStart := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	tl := churn.GenerateTimeline(pop, churn.TimelineConfig{
		Start: epochStart, Duration: cfg.Window, Seed: cfg.Seed + 1,
	})
	res := &DeployResults{Cfg: cfg, Pop: pop, Timeline: tl}

	// Fig 4a: repeated crawls of a live network whose peers follow the
	// first CrawlNetworkSize timelines.
	tn := testnet.Build(testnet.Config{
		N: cfg.CrawlNetworkSize, Seed: cfg.Seed + 2, Scale: cfg.Scale,
		FracDead: 1e-9, FracSlow: 1e-9, FracWSBroken: 1e-9,
	})
	ident := peer.MustNewIdentity(rand.New(rand.NewSource(cfg.Seed + 3)))
	ep := tn.Net.AddNode(ident.ID, simnet.NodeOpts{Region: "DE", Dialable: true})
	cr := crawler.New(swarm.New(ident, ep, tn.Time), crawler.Config{Base: tn.Base, Time: tn.Time, Workers: 96})

	ctx := context.Background()
	for e := 0; e < cfg.CrawlEpochs; e++ {
		now := epochStart.Add(time.Duration(e) * cfg.CrawlInterval)
		var boot []int
		for i := range tn.Nodes {
			online := tl.Peers[i].OnlineAt(now)
			tn.Net.SetOnline(tn.Nodes[i].ID(), online)
			if online && len(boot) < 4 {
				boot = append(boot, i)
			}
		}
		infos := make([]wire.PeerInfo, 0, len(boot))
		for _, i := range boot {
			infos = append(infos, tn.Nodes[i].Info())
		}
		report := cr.Crawl(ctx, infos)
		res.Epochs = append(res.Epochs, CrawlEpoch{
			Time:       now,
			Total:      len(report.Observations),
			Dialable:   report.Dialable(),
			Undialable: report.Undialable(),
		})
	}
	// Restore liveness for any later use of the testnet.
	for i := range tn.Nodes {
		tn.Net.SetOnline(tn.Nodes[i].ID(), true)
	}
	return res
}

// Fig4a renders the crawl time series.
func (r *DeployResults) Fig4a() string {
	var b strings.Builder
	b.WriteString("Figure 4a: crawled peers over time (total / dialable / undialable)\n")
	for _, e := range r.Epochs {
		b.WriteString(fmt.Sprintf("%s  total=%d dialable=%d undialable=%d\n",
			e.Time.Format("15:04"), e.Total, e.Dialable, e.Undialable))
	}
	return b.String()
}

// Fig5 renders the geographic distribution of peers.
func (r *DeployResults) Fig5() string {
	counts := r.Pop.CountryCounts()
	type kv struct {
		c geo.Region
		n int
	}
	var list []kv
	for c, n := range counts {
		list = append(list, kv{c, n})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].n > list[j].n })
	t := stats.NewTable("Country", "Peers", "Share")
	total := len(r.Pop.Peers)
	for i, e := range list {
		if i >= 10 {
			break
		}
		t.AddRow(string(e.c), e.n, fmt.Sprintf("%.1f%%", 100*float64(e.n)/float64(total)))
	}
	return "Figure 5: geographical distribution of peers (top 10)\n" + t.String()
}

// Table2 renders AS concentration.
func (r *DeployResults) Table2() string {
	byAS := make(map[int]int) // rank -> ip count
	ipSeen := make(map[string]bool)
	for _, p := range r.Pop.Peers {
		if ipSeen[p.IP] {
			continue
		}
		ipSeen[p.IP] = true
		byAS[p.AS.Rank]++
	}
	type kv struct {
		rank, n int
	}
	var list []kv
	totalIPs := len(ipSeen)
	for rank, n := range byAS {
		list = append(list, kv{rank, n})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].n > list[j].n })
	infos := r.Pop.AS.Infos()
	t := stats.NewTable("Share", "ASN", "Rank", "AS Name")
	cum := 0.0
	for _, e := range list {
		share := float64(e.n) / float64(totalIPs)
		info := infos[e.rank-1]
		t.AddRow(fmt.Sprintf("%.1f%%", 100*share), info.ASN, info.Rank, info.Name)
		cum += share
		if cum > 0.5 {
			break
		}
	}
	top10 := 0
	for _, e := range list {
		if e.rank <= 10 {
			top10 += e.n
		}
	}
	head := fmt.Sprintf("Table 2: ASes covering >50%% of found IPs (top-10 ASes hold %.1f%%; paper: 64.9%%)\n",
		100*float64(top10)/float64(totalIPs))
	return head + t.String()
}

// Table3 renders cloud-provider share.
func (r *DeployResults) Table3() string {
	byCloud := make(map[string]int)
	cloudTotal := 0
	for _, p := range r.Pop.Peers {
		if p.Cloud != "" {
			byCloud[p.Cloud]++
			cloudTotal++
		}
	}
	type kv struct {
		name string
		n    int
	}
	var list []kv
	for name, n := range byCloud {
		list = append(list, kv{name, n})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].n > list[j].n })
	t := stats.NewTable("Rank", "Provider", "Peers", "Share")
	for i, e := range list {
		t.AddRow(i+1, e.name, e.n, fmt.Sprintf("%.2f%%", 100*float64(e.n)/float64(len(r.Pop.Peers))))
	}
	nonCloud := len(r.Pop.Peers) - cloudTotal
	t.AddRow("-", "Non-Cloud", nonCloud, fmt.Sprintf("%.2f%%", 100*float64(nonCloud)/float64(len(r.Pop.Peers))))
	head := fmt.Sprintf("Table 3: cloud hosting (cloud share %.2f%%; paper: <2.3%%)\n",
		100*float64(cloudTotal)/float64(len(r.Pop.Peers)))
	return head + t.String()
}

// Fig7a renders reliable peers (>90% uptime) by country. Reliability
// is the population attribute planted at the paper's 1.4 % rate: the
// paper's criterion spans a five-month measurement campaign, which a
// 24 h churn window cannot re-derive (ordinary peers with one lucky
// long session would dominate).
func (r *DeployResults) Fig7a() string {
	counts := make(map[geo.Region]int)
	reliable := 0
	for _, p := range r.Pop.Peers {
		if p.Reliable {
			counts[p.Country]++
			reliable++
		}
	}
	t := rankedCountryTable(counts, len(r.Pop.Peers), "permille")
	head := fmt.Sprintf("Figure 7a: reliable peers by country (%.1f%% overall; paper: 1.4%%)\n",
		100*float64(reliable)/float64(len(r.Pop.Peers)))
	return head + t
}

// Fig7b renders never-reachable peers by country.
func (r *DeployResults) Fig7b() string {
	counts := make(map[geo.Region]int)
	unreachable := 0
	for _, p := range r.Pop.Peers {
		if !p.Dialable {
			counts[p.Country]++
			unreachable++
		}
	}
	t := rankedCountryTable(counts, len(r.Pop.Peers), "percent")
	head := fmt.Sprintf("Figure 7b: unreachable peers by country (%.1f%% overall; paper: 33.1%%)\n",
		100*float64(unreachable)/float64(len(r.Pop.Peers)))
	return head + t
}

func rankedCountryTable(counts map[geo.Region]int, total int, unit string) string {
	type kv struct {
		c geo.Region
		n int
	}
	var list []kv
	for c, n := range counts {
		list = append(list, kv{c, n})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].n > list[j].n })
	t := stats.NewTable("Country", "Peers", "Share")
	for i, e := range list {
		if i >= 9 {
			break
		}
		switch unit {
		case "permille":
			t.AddRow(string(e.c), e.n, fmt.Sprintf("%.2f‰", 1000*float64(e.n)/float64(total)))
		default:
			t.AddRow(string(e.c), e.n, fmt.Sprintf("%.2f%%", 100*float64(e.n)/float64(total)))
		}
	}
	return t.String()
}

// Fig7c renders the PeerID-per-IP CDF.
func (r *DeployResults) Fig7c() string {
	perIP := r.Pop.PeersPerIP()
	var maxN int
	hist := make(map[int]int)
	for _, n := range perIP {
		hist[n]++
		if n > maxN {
			maxN = n
		}
	}
	var b strings.Builder
	b.WriteString("Figure 7c: CDF of PeerIDs per IP address\n")
	cum := 0
	for n := 1; n <= 15 && n <= maxN; n++ {
		cum += hist[n]
		b.WriteString(fmt.Sprintf("%2d  %.4f\n", n, float64(cum)/float64(len(perIP))))
	}
	b.WriteString(fmt.Sprintf("max PeerIDs on one IP: %d\n", maxN))
	return b.String()
}

// Fig7d renders IPs per AS ordered by AS rank.
func (r *DeployResults) Fig7d() string {
	byRank := r.Pop.IPsPerASRank()
	ranks := make([]int, 0, len(byRank))
	for rank := range byRank {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	var b strings.Builder
	b.WriteString("Figure 7d: IP addresses per AS by AS rank (log-log series)\n")
	for _, rank := range ranks {
		if rank <= 10 || rank%100 == 0 {
			b.WriteString(fmt.Sprintf("rank=%d ips=%d\n", rank, byRank[rank]))
		}
	}
	return b.String()
}

// Fig8 renders the per-region session-uptime CDFs.
func (r *DeployResults) Fig8(points int) string {
	regions := []geo.Region{"CN", "US", "DE", "HK", "BR", "TW"}
	samples := make(map[geo.Region]*stats.Sample)
	for _, reg := range regions {
		samples[reg] = stats.NewSample()
	}
	obs := r.Timeline.SessionObservations()
	for _, o := range obs {
		if s, ok := samples[o.Region]; ok {
			s.Add(o.Uptime.Hours())
		}
	}
	var b strings.Builder
	b.WriteString(fmt.Sprintf("Figure 8: churn by region, %d session observations (uptime hours)\n", len(obs)))
	for _, reg := range regions {
		s := samples[reg]
		if s.Len() == 0 {
			continue
		}
		b.WriteString(fmt.Sprintf("# %s median=%.2fh under8h=%.3f over24h=%.3f\n",
			reg, s.Median(), s.FractionBelow(8), 1-s.FractionBelow(24)))
		b.WriteString(stats.FormatCDF(fmt.Sprintf("fig8 [%s]", reg), s.CDF(points)))
	}
	return b.String()
}
