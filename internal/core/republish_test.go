package core_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cid"
	"repro/internal/routing"
	"repro/internal/testnet"
	"repro/internal/transport"
)

// TestRepublishBatchesPerTargetPeer is the acceptance test for the
// batched republish path: republishing M CIDs whose records land on P
// distinct target peers issues at most P publish RPCs per cycle —
// asserted against the simulator's network-wide budget — instead of
// the old M × (walk + store fan-out).
func TestRepublishBatchesPerTargetPeer(t *testing.T) {
	tn := buildSmallNet(t, 50)
	publisher := tn.Nodes[0]
	ctx := context.Background()

	const m = 6
	var cids []cid.Cid
	for i := 0; i < m; i++ {
		pub, err := publisher.AddAndPublish(ctx, []byte(fmt.Sprintf("republished object %d", i)))
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		cids = append(cids, pub.Cid)
	}
	if got := len(publisher.Provided()); got != m {
		t.Fatalf("tracking %d cids, want %d", got, m)
	}

	// Cycle 0: every record was just confirmed, so the batch skips all
	// targets — the ack-ledger half of the contract.
	st := publisher.Republish(ctx)
	if st.Batch.StoreRPCs != 0 {
		t.Errorf("republish right after publish sent %d store RPCs, want 0 (all acks fresh)", st.Batch.StoreRPCs)
	}
	if st.Batch.Provided != m {
		t.Errorf("fresh cycle Provided = %d, want %d", st.Batch.Provided, m)
	}

	// Cycle 1 (Republish advanced the ledger): the batch re-pushes every
	// record, grouped per target peer — no walks, and the republish
	// budget stays at or below the distinct target count P.
	before := tn.Net.Budget()
	res := publisher.RepublishRecords(ctx)
	spent := tn.Net.Budget().Sub(before)

	p := res.Targets
	if p == 0 || p >= m*20 {
		t.Fatalf("distinct targets = %d, want a real per-peer grouping (m=%d, k=20)", p, m)
	}
	if res.Walks != 0 {
		t.Errorf("republish paid %d walks, want 0 (target sets remembered by the ledger)", res.Walks)
	}
	if res.StoreRPCs > p {
		t.Errorf("republish sent %d store RPCs for %d distinct targets, want <= P", res.StoreRPCs, p)
	}
	repub := spent.Category(transport.CatRepublish)
	if repub > int64(p) {
		t.Errorf("republish budget = %d RPCs for P=%d distinct targets, want <= P (was M x walk+store before batching)", repub, p)
	}
	if repub == 0 {
		t.Error("republish cycle issued no RPCs; the batch never went out")
	}
	if res.Provided < m-1 {
		t.Errorf("republish provided %d of %d cids on a clean network", res.Provided, m)
	}

	// The records actually landed: another node resolves each CID.
	for _, c := range cids {
		provs, _, err := routing.FindProviders(ctx, routing.NewDHT(tn.Nodes[1].DHT()), c)
		if err != nil || len(provs) == 0 {
			t.Fatalf("providers for %s after batched republish: %v %v", c, provs, err)
		}
	}
}

// TestRetrieveStreamsFailoverCandidates pins the streaming retrieve
// path: the first provider goes to Bitswap while later stream results
// become fail-over candidates, and the result reports the
// time-to-first-provider alongside the full lookup duration.
func TestRetrieveStreamsFailoverCandidates(t *testing.T) {
	tn := buildSmallNet(t, 40)
	ctx := context.Background()
	data := []byte("content with two providers")

	a, b := tn.Nodes[0], tn.Nodes[1]
	pub, err := a.AddAndPublish(ctx, data)
	if err != nil {
		t.Fatalf("publish a: %v", err)
	}
	if _, err := b.Add(data); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(ctx, pub.Cid); err != nil {
		t.Fatalf("publish b: %v", err)
	}

	getter := tn.AddVantage("US", 600)
	got, res, err := getter.Retrieve(ctx, pub.Cid)
	if err != nil || string(got) != string(data) {
		t.Fatalf("retrieve: %v", err)
	}
	if res.FirstProvider <= 0 {
		t.Error("time-to-first-provider not measured")
	}
	if res.LookupFull < res.ProviderWalk {
		t.Errorf("full lookup %v shorter than its blocked prefix %v", res.LookupFull, res.ProviderWalk)
	}
	// Both publishers stored on the same k-closest set, so the first
	// record-carrying response names both: one becomes the session
	// provider, the other a fail-over candidate.
	if res.StreamCandidates < 1 {
		t.Errorf("StreamCandidates = %d, want the second provider kept as fail-over", res.StreamCandidates)
	}
}

// TestParallelDiscoveryAskFailsBeforeStream is the deadlock regression
// for discoverParallel: when the Bitswap ask fails before the provider
// stream yields (an unconnected requester: the ask errors instantly,
// the walk takes a while), the stream-win path must not block on the
// already-drained ask channel.
func TestParallelDiscoveryAskFailsBeforeStream(t *testing.T) {
	tn := testnet.Build(testnet.Config{
		N: 40, Seed: 19, Scale: 0.0004,
		ParallelDiscovery: true,
		FracDead:          0.0001, FracSlow: 0.0001, FracWSBroken: 0.0001,
	})
	ctx := context.Background()
	pub, err := tn.Nodes[0].AddAndPublish(ctx, []byte("raced discovery content"))
	if err != nil {
		t.Fatal(err)
	}
	getter := tn.AddVantage("US", 910)

	type outcome struct {
		data []byte
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		data, _, err := getter.Retrieve(ctx, pub.Cid)
		ch <- outcome{data: data, err: err}
	}()
	select {
	case o := <-ch:
		if o.err != nil || string(o.data) != "raced discovery content" {
			t.Fatalf("parallel-discovery retrieve: %v", o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("parallel-discovery retrieval deadlocked: stream won after the ask failed")
	}
}
