package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bitswap"
	"repro/internal/cid"
	"repro/internal/dht"
	"repro/internal/merkledag"
	"repro/internal/peer"
	"repro/internal/routing"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// RetrieveResult instruments one content retrieval with the phase
// breakdown of §3.2 / Figure 9d–f: opportunistic Bitswap, the provider
// lookup stream, connecting to the provider, and the content exchange.
// All durations are simulated time.
type RetrieveResult struct {
	Cid   cid.Cid
	Bytes int

	Total         time.Duration
	BitswapPhase  time.Duration // opportunistic/routed ask for a session peer
	BitswapHit    bool          // content resolved by the blind broadcast
	RoutedSession bool          // session peer came from the router, broadcast skipped
	// ProviderWalk is the time retrieval blocked on the provider stream
	// before its first provider arrived — with streaming discovery the
	// fetch starts here, while the lookup keeps running in background.
	ProviderWalk time.Duration
	// FirstProvider is the time-to-first-provider: retrieval start to
	// the first provider known (Bitswap hit or first streamed batch) —
	// the §6.2 metric streaming discovery improves, because retrieval
	// no longer waits on complete lookup results.
	FirstProvider time.Duration
	// LookupFull is the provider stream's full duration, including the
	// background draining for fail-over candidates after the first
	// provider was already handed to Bitswap — what the old blocking
	// lookup would have added to the critical path.
	LookupFull time.Duration
	// StreamCandidates counts extra providers the stream yielded after
	// the first; they seed session fail-over without new routing RPCs.
	StreamCandidates int
	LookupMsgs       int           // routing RPCs across discovery, session consults, fail-over
	PeerWalk         time.Duration // second DHT walk (peer discovery)
	UsedBook         bool          // address book supplied the addresses
	Dial             time.Duration // peer routing: connect to the provider
	Fetch            time.Duration // content exchange (Bitswap transfer)

	// Per-session Bitswap message accounting, alongside LookupMsgs.
	WantHaves        int // WANT-HAVE messages sent (discovery + session handshakes)
	WantBlocks       int // WANT-BLOCK transfer messages
	SuppressedWants  int // duplicate broadcast fan-out suppressed by deduplication
	SessionFailovers int // provider switches the session made under churn

	Provider peer.ID
}

// Discover is the total lookup time retrieval blocked on: everything
// HTTP would not do.
func (r RetrieveResult) Discover() time.Duration {
	return r.BitswapPhase + r.ProviderWalk + r.PeerWalk
}

// Stretch is Eq (2): (Discover + Dial + Negotiate + Fetch) / (Dial +
// Negotiate + Fetch); Dial here includes transport and secure-channel
// negotiation.
func (r RetrieveResult) Stretch() float64 {
	den := (r.Dial + r.Fetch).Seconds()
	if den <= 0 {
		return 1
	}
	return (r.Discover().Seconds() + den) / den
}

// StretchWithoutBitswap removes the initial Bitswap timeout from the
// numerator, the Figure 10b variant.
func (r RetrieveResult) StretchWithoutBitswap() float64 {
	den := (r.Dial + r.Fetch).Seconds()
	if den <= 0 {
		return 1
	}
	return ((r.Discover() - r.BitswapPhase).Seconds() + den) / den
}

// ErrNotFound is returned when no provider could be located.
var ErrNotFound = errors.New("core: content not found")

// providerStream runs a router's provider stream on its own goroutine:
// the first discovered provider is delivered on first, later ones
// accumulate as session fail-over candidates, and the stream's message
// cost is collected once at Finish.
type providerStream struct {
	cancel context.CancelFunc
	src    simtime.Source
	sctx   context.Context // the stream's context; carries the scheduler lease
	first  chan wire.PeerInfo
	done   chan struct{}
	st     *routing.StreamInfo

	mu     sync.Mutex
	extras []wire.PeerInfo
}

// startProviderStream launches the streaming lookup for root. The
// stream stops itself after one session provider plus enough fail-over
// candidates (the Bitswap session peer target), or when Finish cancels
// it.
func (n *Node) startProviderStream(ctx context.Context, root cid.Cid) *providerStream {
	sctx, cancel := context.WithCancel(ctx)
	seq, st := n.router.FindProvidersStream(sctx, root)
	ps := &providerStream{
		cancel: cancel,
		src:    n.cfg.Time,
		sctx:   sctx,
		first:  make(chan wire.PeerInfo, 1),
		done:   make(chan struct{}),
		st:     st,
	}
	total := 1 + n.bswap.SessionPeerTarget() // the session provider plus fail-over candidates
	n.cfg.Time.Go(sctx, func(context.Context) {
		defer close(ps.done)
		count := 0
		seq(func(batch []wire.PeerInfo) bool {
			for _, p := range batch {
				if count == 0 {
					ps.first <- p
				} else {
					ps.mu.Lock()
					ps.extras = append(ps.extras, p)
					ps.mu.Unlock()
				}
				count++
			}
			return count < total
		})
	})
	return ps
}

// Candidates snapshots the fail-over candidates streamed so far. A
// first provider nobody consumed — the Bitswap ask won the discovery
// race before the stream yielded — is reclaimed as a candidate instead
// of being stranded in the hand-off buffer. Candidates is only called
// once discovery has returned, so draining the buffer here cannot race
// a discovery select.
func (ps *providerStream) Candidates() []wire.PeerInfo {
	select {
	case p := <-ps.first:
		ps.mu.Lock()
		ps.extras = append([]wire.PeerInfo{p}, ps.extras...)
		ps.mu.Unlock()
	default:
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return append([]wire.PeerInfo(nil), ps.extras...)
}

// Finish cancels any remaining lookup work, waits for the stream to
// wind down, and returns its accumulated statistics. The join is
// instrumented under the scheduler (the cancelled stream unwinds on
// virtual time) via the stream context's lease, detached so the
// already-fallen cancellation cannot cut the join short.
func (ps *providerStream) Finish() routing.LookupInfo {
	ps.cancel()
	simtime.AwaitClosed(simtime.Detach(ps.sctx), ps.src, ps.done)
	return ps.st.Info()
}

// awaitFirst blocks until the stream hands over its first provider or
// winds down dry, returning ok=false in the latter case. A provider
// yielded right at stream end sits in the hand-off buffer, so the
// wound-down path re-checks it before giving up.
func (ps *providerStream) awaitFirst(ctx context.Context) (wire.PeerInfo, bool) {
	closed := func() bool {
		select {
		case <-ps.done:
			return true
		default:
			return false
		}
	}
	if s := simtime.SchedulerOf(ps.src); s != nil {
		// Cancellation reaches the stream through its own context and
		// closes done, so the wait itself runs detached.
		s.Await(simtime.Detach(ctx), func() bool { return len(ps.first) > 0 || closed() })
	} else {
		select {
		case p := <-ps.first:
			return p, true
		case <-ps.done:
		}
	}
	select {
	case p := <-ps.first:
		return p, true
	default:
	}
	return wire.PeerInfo{}, false
}

// Retrieve fetches the content behind root from the network, following
// §3.2: (i) opportunistic Bitswap with a 1 s timeout, (ii) content
// discovery via the router's provider stream — the first provider goes
// straight to Bitswap while the stream keeps yielding fail-over
// candidates in the background — (iii) peer discovery via the address
// book or a second walk, (iv) peer routing (connect), and (v) content
// exchange over Bitswap.
func (n *Node) Retrieve(ctx context.Context, root cid.Cid) (data []byte, res RetrieveResult, err error) {
	res = RetrieveResult{Cid: root}
	src := n.cfg.Time
	start := src.Stamp()
	ctx, trsp := n.tel.StartTrace(ctx, "retrieve",
		telemetry.A("cid", root.String()), telemetry.A("router", n.router.Name()))
	defer func() {
		trsp.Annotate("ok", fmt.Sprint(err == nil))
		trsp.Annotate("bytes", fmt.Sprint(res.Bytes))
		trsp.End()
		n.recordRetrieve(res, err)
	}()

	// Already local? Serve without network interaction.
	if data, err := merkledag.Assemble(n.store, root); err == nil {
		res.Total = src.Since(start)
		res.Bytes = len(data)
		trsp.Annotate("local", "true")
		return data, res, nil
	}

	// Content discovery (§3.2 steps i–ii): the routed/opportunistic
	// Bitswap ask plus the provider stream, as one trace phase.
	dctx, dsp := telemetry.StartSpan(ctx, "discover")
	provider, ps, err := n.discover(dctx, root, &res)
	dsp.Annotate("routed", fmt.Sprint(res.RoutedSession))
	dsp.Annotate("bitswap-hit", fmt.Sprint(res.BitswapHit))
	dsp.End()
	// finish collects the stream's cost exactly once, whatever exit
	// path the retrieval takes: the lookup RPCs (background draining
	// included), the full lookup duration, and the candidate count.
	finished := false
	finish := func() {
		if ps == nil || finished {
			return
		}
		finished = true
		info := ps.Finish()
		res.LookupMsgs += routing.LookupMessages(info)
		res.LookupFull = info.Duration
		res.StreamCandidates = len(ps.Candidates())
	}
	if err != nil {
		res.Total = src.Since(start)
		finish()
		return nil, res, err
	}
	res.Provider = provider.ID
	res.FirstProvider = src.Since(start)

	// Peer discovery + peer routing (§3.2 steps iii–iv): resolve the
	// first provider's addresses and connect to it, as one trace phase.
	fpctx, fpsp := telemetry.StartSpan(ctx, "first-provider",
		telemetry.A("provider", provider.ID.String()))

	// Peer discovery: map the PeerID to addresses via the address book
	// (§3.2's shortcut) or a second DHT walk.
	if len(provider.Addrs) == 0 && !n.sw.Connected(provider.ID) {
		if addrs, ok := n.sw.Book().Get(provider.ID); ok {
			provider.Addrs = addrs
			res.UsedBook = true
		} else {
			info, walk, err := n.dht.FindPeer(fpctx, provider.ID)
			res.PeerWalk = walk.Duration
			if err != nil {
				res.Total = src.Since(start)
				fpsp.End()
				finish()
				return nil, res, fmt.Errorf("%w: provider %s unresolvable: %v", ErrNotFound, provider.ID.Short(), err)
			}
			provider.Addrs = info.Addrs
		}
	}
	fpsp.Annotate("book", fmt.Sprint(res.UsedBook))

	// Peer routing: connect to the provider.
	_, dialDur, err := n.sw.Connect(fpctx, provider.ID, provider.Addrs)
	if err != nil {
		res.Total = src.Since(start)
		fpsp.End()
		finish()
		return nil, res, fmt.Errorf("%w: cannot connect to provider: %v", ErrNotFound, err)
	}
	res.Dial = dialDur
	fpsp.End()

	// Content exchange: fetch and verify the DAG via Bitswap, with
	// sibling blocks requested concurrently as real sessions do. A
	// provider that already answered HAVE during discovery skips the
	// redundant handshake; a provider failing mid-session is replaced
	// first from the stream's fail-over candidates (already paid for),
	// then through the router.
	fetchStart := src.Stamp()
	fctx, fsp := telemetry.StartSpan(ctx, "fetch")
	session := n.bswap.NewSession(fctx, provider).ForRoot(root)
	if ps != nil {
		session.WithCandidates(ps.Candidates)
	}
	if res.BitswapHit || res.RoutedSession {
		session.Confirm()
	}
	data, err = merkledag.AssembleConcurrentOn(fctx, src, session, root, 8)
	ss := session.Stats()
	res.WantHaves += ss.WantHaves
	res.WantBlocks += ss.WantBlocks
	res.LookupMsgs += ss.RoutingMsgs
	res.SessionFailovers += ss.Failovers
	res.Fetch = src.Since(fetchStart)
	res.Total = src.Since(start)
	fsp.Annotate("blocks", fmt.Sprint(ss.WantBlocks))
	fsp.Annotate("failovers", fmt.Sprint(ss.Failovers))
	fsp.End()
	finish()
	if err != nil {
		return nil, res, fmt.Errorf("%w: fetch failed: %v", ErrNotFound, err)
	}
	res.Bytes = len(data)

	if n.cfg.ProvideAfterRetrieve {
		// Having verified the content, we can serve it: publish a
		// provider record pointing at ourselves (§3.1).
		if _, err := n.router.Provide(ctx, root); err == nil {
			// best effort
			_ = err
		}
	}
	return data, res, nil
}

// recordRetrieve folds one retrieval's instrumentation into the node's
// metrics registry: per-router counters, the §6.2 latency histograms
// and the walk/stream message accounting.
func (n *Node) recordRetrieve(res RetrieveResult, err error) {
	reg := n.tel.Registry()
	router := n.router.Name()
	reg.Counter("retrieves_total", "router", router).Inc()
	if err != nil {
		reg.Counter("retrieve_failures", "router", router).Inc()
	}
	if res.RoutedSession {
		reg.Counter("routed_sessions", "router", router).Inc()
	}
	reg.Counter("want_haves").Add(float64(res.WantHaves))
	reg.Counter("suppressed_wants").Add(float64(res.SuppressedWants))
	reg.Counter("stream_candidates_drained").Add(float64(res.StreamCandidates))
	reg.Counter("session_failovers").Add(float64(res.SessionFailovers))
	reg.Histogram("retrieve_seconds", 0.25, "router", router).ObserveDuration(res.Total)
	reg.Histogram("discover_seconds", 0.25, "router", router).ObserveDuration(res.Discover())
	reg.Histogram("lookup_msgs", 5, "router", router).Observe(float64(res.LookupMsgs))
}

// discover locates a provider for root: the session-routed (or
// opportunistic) Bitswap phase, then (or in parallel, when configured)
// the router's streaming provider lookup. The returned providerStream,
// when non-nil, is still draining fail-over candidates; the caller
// collects its cost via Finish.
func (n *Node) discover(ctx context.Context, root cid.Cid, res *RetrieveResult) (wire.PeerInfo, *providerStream, error) {
	if n.cfg.ParallelDiscovery {
		return n.discoverParallel(ctx, root, res)
	}

	// Serial (deployed) behaviour: the Bitswap ask first — targeted at
	// router-known providers when the router has them, the blind
	// broadcast otherwise — then the provider stream after its timeout.
	info, ask, err := n.bswap.AskConnected(ctx, root)
	res.BitswapPhase = ask.Duration
	res.WantHaves += ask.WantHaves
	res.SuppressedWants += ask.Suppressed
	res.LookupMsgs += ask.RoutingMsgs
	if err == nil {
		res.BitswapHit = !ask.Routed
		res.RoutedSession = ask.Routed
		return info, nil, nil
	}

	// Consult-result handoff: a session-consult miss above already
	// probed the snapshot/indexer neighbourhood, so the provider stream
	// skips the duplicate one-hop wave and goes straight to its walk
	// fallback.
	fctx := ctx
	if ask.ConsultMiss {
		fctx = routing.WithSessionMiss(ctx, root)
	}
	ps := n.startProviderStream(fctx, root)
	lookupStart := n.cfg.Time.Stamp()
	p, ok := ps.awaitFirst(ctx)
	res.ProviderWalk = n.cfg.Time.Since(lookupStart)
	if ok {
		// First provider in hand: Bitswap starts now, the stream keeps
		// draining fail-over candidates in the background.
		return p, ps, nil
	}
	return wire.PeerInfo{}, ps, wrapDiscoveryErr(ps.st.Err(), root)
}

// wrapDiscoveryErr maps an exhausted-lookup error to ErrNotFound.
func wrapDiscoveryErr(err error, root cid.Cid) error {
	if err == nil {
		err = routing.ErrNoProviders
	}
	if errors.Is(err, dht.ErrNoProviders) || errors.Is(err, bitswap.ErrTimeout) {
		return fmt.Errorf("%w: no provider records for %s: %v", ErrNotFound, root, err)
	}
	return err
}

// discoverParallel races the Bitswap ask against the provider stream —
// the §6.2 optimization trading extra requests for latency. Whichever
// loses is cancelled and its RPCs are charged (the ask's here, the
// stream's at Finish).
func (n *Node) discoverParallel(ctx context.Context, root cid.Cid, res *RetrieveResult) (wire.PeerInfo, *providerStream, error) {
	src := n.cfg.Time
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	type askOutcome struct {
		info wire.PeerInfo
		ask  bitswap.AskStats
		err  error
	}
	askCh := make(chan askOutcome, 1)
	src.Go(actx, func(gctx context.Context) {
		info, ask, err := n.bswap.AskConnected(gctx, root)
		askCh <- askOutcome{info: info, ask: ask, err: err}
	})
	ps := n.startProviderStream(ctx, root)
	lookupStart := src.Stamp()

	chargeAsk := func(o askOutcome) {
		res.WantHaves += o.ask.WantHaves
		res.SuppressedWants += o.ask.Suppressed
		res.LookupMsgs += o.ask.RoutingMsgs
	}
	var firstErr error
	askDone, streamDone := false, false
	streamWin := func(p wire.PeerInfo) (wire.PeerInfo, *providerStream, error) {
		res.ProviderWalk = src.Since(lookupStart)
		acancel()
		if !askDone {
			// Drain the cancelled ask and charge its RPCs. It deposits
			// into the buffered channel unconditionally, so the drain
			// runs detached from the just-fallen context.
			if o, ok := simtime.Recv(simtime.Detach(ctx), src, askCh); ok {
				chargeAsk(o)
			}
		}
		return p, ps, nil
	}
	askWon := func(o askOutcome) (wire.PeerInfo, *providerStream, error) {
		res.BitswapPhase = o.ask.Duration
		res.BitswapHit = !o.ask.Routed
		res.RoutedSession = o.ask.Routed
		// The stream lost the race but keeps feeding fail-over
		// candidates while the fetch runs; its RPCs are charged at
		// Finish.
		return o.info, ps, nil
	}
	if s := simtime.SchedulerOf(src); s != nil {
		// Event-driven merge of the two racers: park until the ask
		// outcome, the stream's first provider, or the stream's
		// wind-down is available, then handle whatever arrived. Both
		// racers observe ctx themselves, so the park runs detached.
		streamClosed := func() bool {
			select {
			case <-ps.done:
				return true
			default:
				return false
			}
		}
		for !askDone || !streamDone {
			if err := s.Await(simtime.Detach(ctx), func() bool {
				return (!askDone && len(askCh) > 0) || len(ps.first) > 0 || (!streamDone && streamClosed())
			}); err != nil {
				break // scheduler shut down underneath us
			}
			select {
			case p := <-ps.first:
				return streamWin(p)
			default:
			}
			if !askDone && len(askCh) > 0 {
				o := <-askCh
				askDone = true
				chargeAsk(o)
				if o.err == nil {
					return askWon(o)
				}
				if firstErr == nil {
					firstErr = o.err
				}
			}
			if !streamDone && streamClosed() {
				select {
				case p := <-ps.first:
					return streamWin(p)
				default:
				}
				streamDone = true
				if err := ps.st.Err(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		return wire.PeerInfo{}, ps, wrapDiscoveryErr(firstErr, root)
	}
	doneCh := ps.done // nilled once drained: a closed channel is always ready
	for !askDone || !streamDone {
		select {
		case o := <-askCh:
			askDone = true
			chargeAsk(o)
			if o.err == nil {
				return askWon(o)
			}
			if firstErr == nil {
				firstErr = o.err
			}
		case p := <-ps.first:
			return streamWin(p)
		case <-doneCh:
			select {
			case p := <-ps.first:
				return streamWin(p)
			default:
			}
			doneCh = nil
			streamDone = true
			if err := ps.st.Err(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return wire.PeerInfo{}, ps, wrapDiscoveryErr(firstErr, root)
}
