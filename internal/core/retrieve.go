package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/bitswap"
	"repro/internal/cid"
	"repro/internal/dht"
	"repro/internal/merkledag"
	"repro/internal/peer"
	"repro/internal/routing"
	"repro/internal/wire"
)

// RetrieveResult instruments one content retrieval with the phase
// breakdown of §3.2 / Figure 9d–f: opportunistic Bitswap, the DHT
// walk(s) for provider and peer records, connecting to the provider,
// and the content exchange. All durations are simulated time.
type RetrieveResult struct {
	Cid   cid.Cid
	Bytes int

	Total         time.Duration
	BitswapPhase  time.Duration // opportunistic/routed ask for a session peer
	BitswapHit    bool          // content resolved by the blind broadcast
	RoutedSession bool          // session peer came from the router, broadcast skipped
	ProviderWalk  time.Duration // content discovery via the router (first DHT walk)
	LookupMsgs    int           // routing RPCs across discovery, session consults, fail-over
	PeerWalk      time.Duration // second DHT walk (peer discovery)
	UsedBook      bool          // address book supplied the addresses
	Dial          time.Duration // peer routing: connect to the provider
	Fetch         time.Duration // content exchange (Bitswap transfer)

	// Per-session Bitswap message accounting, alongside LookupMsgs.
	WantHaves        int // WANT-HAVE messages sent (discovery + session handshakes)
	WantBlocks       int // WANT-BLOCK transfer messages
	SuppressedWants  int // duplicate broadcast fan-out suppressed by deduplication
	SessionFailovers int // provider switches the session made under churn

	Provider peer.ID
}

// Discover is the total lookup time: everything HTTP would not do.
func (r RetrieveResult) Discover() time.Duration {
	return r.BitswapPhase + r.ProviderWalk + r.PeerWalk
}

// Stretch is Eq (2): (Discover + Dial + Negotiate + Fetch) / (Dial +
// Negotiate + Fetch); Dial here includes transport and secure-channel
// negotiation.
func (r RetrieveResult) Stretch() float64 {
	den := (r.Dial + r.Fetch).Seconds()
	if den <= 0 {
		return 1
	}
	return (r.Discover().Seconds() + den) / den
}

// StretchWithoutBitswap removes the initial Bitswap timeout from the
// numerator, the Figure 10b variant.
func (r RetrieveResult) StretchWithoutBitswap() float64 {
	den := (r.Dial + r.Fetch).Seconds()
	if den <= 0 {
		return 1
	}
	return ((r.Discover() - r.BitswapPhase).Seconds() + den) / den
}

// ErrNotFound is returned when no provider could be located.
var ErrNotFound = errors.New("core: content not found")

// Retrieve fetches the content behind root from the network, following
// §3.2: (i) opportunistic Bitswap with a 1 s timeout, (ii) content
// discovery via a DHT walk for provider records, (iii) peer discovery
// via the address book or a second walk, (iv) peer routing (connect),
// and (v) content exchange over Bitswap.
func (n *Node) Retrieve(ctx context.Context, root cid.Cid) ([]byte, RetrieveResult, error) {
	res := RetrieveResult{Cid: root}
	start := time.Now()

	// Already local? Serve without network interaction.
	if data, err := merkledag.Assemble(n.store, root); err == nil {
		res.Total = n.cfg.Base.SimSince(start)
		res.Bytes = len(data)
		return data, res, nil
	}

	provider, err := n.discover(ctx, root, &res)
	if err != nil {
		res.Total = n.cfg.Base.SimSince(start)
		return nil, res, err
	}
	res.Provider = provider.ID

	// Peer discovery: map the PeerID to addresses via the address book
	// (§3.2's shortcut) or a second DHT walk.
	if len(provider.Addrs) == 0 && !n.sw.Connected(provider.ID) {
		if addrs, ok := n.sw.Book().Get(provider.ID); ok {
			provider.Addrs = addrs
			res.UsedBook = true
		} else {
			info, walk, err := n.dht.FindPeer(ctx, provider.ID)
			res.PeerWalk = walk.Duration
			if err != nil {
				res.Total = n.cfg.Base.SimSince(start)
				return nil, res, fmt.Errorf("%w: provider %s unresolvable: %v", ErrNotFound, provider.ID.Short(), err)
			}
			provider.Addrs = info.Addrs
		}
	}

	// Peer routing: connect to the provider.
	_, dialDur, err := n.sw.Connect(ctx, provider.ID, provider.Addrs)
	if err != nil {
		res.Total = n.cfg.Base.SimSince(start)
		return nil, res, fmt.Errorf("%w: cannot connect to provider: %v", ErrNotFound, err)
	}
	res.Dial = dialDur

	// Content exchange: fetch and verify the DAG via Bitswap, with
	// sibling blocks requested concurrently as real sessions do. A
	// provider that already answered HAVE during discovery skips the
	// redundant handshake; a provider failing mid-session is replaced
	// through the router (fail-over under churn).
	fetchStart := time.Now()
	session := n.bswap.NewSession(ctx, provider).ForRoot(root)
	if res.BitswapHit || res.RoutedSession {
		session.Confirm()
	}
	data, err := merkledag.AssembleConcurrent(session, root, 8)
	ss := session.Stats()
	res.WantHaves += ss.WantHaves
	res.WantBlocks += ss.WantBlocks
	res.LookupMsgs += ss.RoutingMsgs
	res.SessionFailovers += ss.Failovers
	res.Fetch = n.cfg.Base.SimSince(fetchStart)
	res.Total = n.cfg.Base.SimSince(start)
	if err != nil {
		return nil, res, fmt.Errorf("%w: fetch failed: %v", ErrNotFound, err)
	}
	res.Bytes = len(data)

	if n.cfg.ProvideAfterRetrieve {
		// Having verified the content, we can serve it: publish a
		// provider record pointing at ourselves (§3.1).
		if _, err := n.router.Provide(ctx, root); err == nil {
			// best effort
			_ = err
		}
	}
	return data, res, nil
}

// discover locates a provider for root: the session-routed (or
// opportunistic) Bitswap phase, then (or in parallel, when configured)
// the router's provider lookup.
func (n *Node) discover(ctx context.Context, root cid.Cid, res *RetrieveResult) (wire.PeerInfo, error) {
	if n.cfg.ParallelDiscovery {
		return n.discoverParallel(ctx, root, res)
	}

	// Serial (deployed) behaviour: the Bitswap ask first — targeted at
	// router-known providers when the router has them, the blind
	// broadcast otherwise — then the provider lookup after its timeout.
	info, ask, err := n.bswap.AskConnected(ctx, root)
	res.BitswapPhase = ask.Duration
	res.WantHaves += ask.WantHaves
	res.SuppressedWants += ask.Suppressed
	res.LookupMsgs += ask.RoutingMsgs
	if err == nil {
		res.BitswapHit = !ask.Routed
		res.RoutedSession = ask.Routed
		return info, nil
	}

	// Consult-result handoff: a session-consult miss above already
	// probed the snapshot/indexer neighbourhood, so the follow-up
	// FindProviders skips the duplicate one-hop wave and goes straight
	// to its walk fallback.
	fctx := ctx
	if ask.ConsultMiss {
		fctx = routing.WithSessionMiss(ctx, root)
	}
	providers, lookup, err := n.router.FindProviders(fctx, root)
	res.ProviderWalk = lookup.Duration
	res.LookupMsgs += routing.LookupMessages(lookup)
	if err != nil {
		if errors.Is(err, dht.ErrNoProviders) {
			return wire.PeerInfo{}, fmt.Errorf("%w: no provider records for %s", ErrNotFound, root)
		}
		return wire.PeerInfo{}, err
	}
	return providers[0], nil
}

// discoverParallel races the Bitswap ask against the router lookup —
// the §6.2 optimization trading extra requests for latency.
func (n *Node) discoverParallel(ctx context.Context, root cid.Cid, res *RetrieveResult) (wire.PeerInfo, error) {
	type outcome struct {
		info    wire.PeerInfo
		bitswap bool
		ask     bitswap.AskStats
		dur     time.Duration
		msgs    int
		err     error
	}
	ch := make(chan outcome, 2)
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	go func() {
		info, ask, err := n.bswap.AskConnected(pctx, root)
		ch <- outcome{info: info, bitswap: true, ask: ask, dur: ask.Duration, err: err}
	}()
	go func() {
		providers, lookup, err := n.router.FindProviders(pctx, root)
		o := outcome{dur: lookup.Duration, msgs: routing.LookupMessages(lookup), err: err}
		if err == nil {
			o.info = providers[0]
		}
		ch <- o
	}()

	// charge adds an outcome's messages to the result whether it won or
	// lost: the race trades extra requests for latency, and those extra
	// requests must show up in the accounting.
	charge := func(o outcome) {
		if o.bitswap {
			res.WantHaves += o.ask.WantHaves
			res.SuppressedWants += o.ask.Suppressed
			res.LookupMsgs += o.ask.RoutingMsgs
		} else {
			res.LookupMsgs += o.msgs
		}
	}
	var firstErr error
	for i := 0; i < 2; i++ {
		o := <-ch
		charge(o)
		if o.err == nil {
			if o.bitswap {
				res.BitswapPhase = o.dur
				res.BitswapHit = !o.ask.Routed
				res.RoutedSession = o.ask.Routed
			} else {
				res.ProviderWalk = o.dur
			}
			// Cancel and drain the loser so the RPCs it launched before
			// losing are charged too.
			cancel()
			for j := i + 1; j < 2; j++ {
				charge(<-ch)
			}
			return o.info, nil
		}
		if firstErr == nil {
			firstErr = o.err
		}
	}
	if errors.Is(firstErr, bitswap.ErrTimeout) || errors.Is(firstErr, dht.ErrNoProviders) {
		return wire.PeerInfo{}, fmt.Errorf("%w: %v", ErrNotFound, firstErr)
	}
	return wire.PeerInfo{}, firstErr
}
