// Package core implements the paper's primary contribution: the IPFS
// node that publishes (§3.1) and retrieves (§3.2) content-addressed
// objects over the DHT and Bitswap, with per-phase instrumentation
// matching the measurements of §6.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bitswap"
	"repro/internal/block"
	"repro/internal/cid"
	"repro/internal/dht"
	"repro/internal/geo"
	"repro/internal/ipns"
	"repro/internal/merkledag"
	"repro/internal/multiaddr"
	"repro/internal/peer"
	"repro/internal/routing"
	"repro/internal/simtime"
	"repro/internal/swarm"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/unixfs"
	"repro/internal/wire"
)

// Config tunes a node; zero values select the paper's defaults.
type Config struct {
	// Mode selects DHT server or client participation.
	Mode dht.Mode
	// Region locates the node for the latency model (informational on
	// real transports).
	Region geo.Region
	// ChunkSize for content import (256 KiB).
	ChunkSize int
	// Fanout for the Merkle DAG builder (174).
	Fanout int
	// K, Alpha, QueryTimeout configure the DHT (20 / 3 / 10 s).
	K            int
	Alpha        int
	QueryTimeout time.Duration
	// BitswapTimeout is the opportunistic discovery timeout (1 s).
	BitswapTimeout time.Duration
	// ParallelDiscovery runs the DHT walk concurrently with the Bitswap
	// broadcast instead of serially after its timeout — the §6.2
	// proposal ("running DHT lookups in parallel to Bitswap could be
	// superior"). Off by default, as deployed.
	ParallelDiscovery bool
	// OmitProviderAddrs forces retrievals through the second DHT walk
	// (see dht.Config).
	OmitProviderAddrs bool
	// ProvideAfterRetrieve republishes a provider record for content we
	// just fetched, making us a temporary provider (§3.1).
	ProvideAfterRetrieve bool
	// Routing selects the content-routing implementation: the baseline
	// DHT walk (default), the accelerated one-hop client, the delegated
	// indexer client, or the parallel composite racing all of them.
	Routing routing.Kind
	// Store is the blockstore backing Bitswap serving, the gateway read
	// path and content import. Nil selects an in-memory MemStore. A
	// store implementing SetMetrics(*telemetry.Registry) is wired into
	// the node's registry; one implementing io.Closer is closed with
	// the node.
	Store block.Store
	// Indexers are the delegated-routing indexer nodes the indexer and
	// parallel routers publish to and query.
	Indexers []wire.PeerInfo
	// IndexerSet, when non-nil, installs a sharded indexer topology on
	// the indexer router: each CID routes to its shard's replica group
	// instead of the flat Indexers list.
	IndexerSet *routing.IndexerSet
	// Base compresses simulated time (legacy; folded into Time).
	Base simtime.Base
	// Now supplies the clock for record expiry (legacy; folded into
	// Time).
	Now func() time.Time
	// Time is the unified time surface every subsystem of the node
	// (swarm, DHT, Bitswap, routing, telemetry) runs on. When nil it is
	// derived from Base/Now; scenario runs pass the event scheduler so
	// the whole node sleeps on the event queue.
	Time simtime.Source
}

func (c Config) withDefaults() Config {
	if c.BitswapTimeout <= 0 {
		c.BitswapTimeout = bitswap.DefaultOpportunisticTimeout
	}
	if c.Base == (simtime.Base{}) {
		c.Base = simtime.Realtime
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Time == nil {
		c.Time = simtime.NewBaseSource(c.Base, c.Now)
	}
	return c
}

// Node is one IPFS peer.
type Node struct {
	cfg     Config
	ident   peer.Identity
	sw      *swarm.Swarm
	dht     *dht.DHT
	bswap   *bitswap.Bitswap
	store   block.Store
	pin     block.Pinner
	builder *merkledag.Builder
	repub   republisher

	router routing.Router
	accel  *routing.AcceleratedRouter // non-nil when the accelerated client is in play
	tel    *telemetry.Recorder

	ipnsSeq uint64
}

// New assembles a node over the given transport endpoint and installs
// its message dispatcher.
func New(ident peer.Identity, ep transport.Endpoint, cfg Config) *Node {
	cfg = cfg.withDefaults()
	sw := swarm.New(ident, ep, cfg.Time)
	store := cfg.Store
	if store == nil {
		store = block.NewMemStore()
	}
	d := dht.New(ident, sw, cfg.Mode, dht.Config{
		K:                 cfg.K,
		Alpha:             cfg.Alpha,
		QueryTimeout:      cfg.QueryTimeout,
		Base:              cfg.Base,
		Now:               cfg.Now,
		Time:              cfg.Time,
		OmitProviderAddrs: cfg.OmitProviderAddrs,
	})
	d.SetIPNSValidator(ipns.ValidatorFor(cfg.Now))
	bs := bitswap.New(sw, store, bitswap.Config{
		OpportunisticTimeout: cfg.BitswapTimeout,
		SessionPeerTarget:    cfg.Alpha,
		Base:                 cfg.Base,
		Time:                 cfg.Time,
	})
	n := &Node{
		cfg:     cfg,
		ident:   ident,
		sw:      sw,
		dht:     d,
		bswap:   bs,
		store:   store,
		builder: merkledag.NewBuilder(store, cfg.ChunkSize, cfg.Fanout),
		tel:     telemetry.NewRecorder(cfg.Time),
	}
	if p, ok := store.(block.Pinner); ok {
		n.pin = p
	} else {
		n.pin = noopPinner{}
	}
	if m, ok := store.(interface {
		SetMetrics(*telemetry.Registry)
	}); ok {
		m.SetMetrics(n.tel.Registry())
	}
	n.router = n.buildRouter()
	// Bitswap session peer selection and the want-broadcast policy go
	// through the same router that serves provider lookups, so the
	// one-hop clients feed retrieval directly (§3.2 end to end).
	bs.SetRouting(n.router)
	ep.SetHandler(n.handle)
	return n
}

// buildRouter assembles the configured routing stack over the node's
// swarm and DHT. The DHT walk always backs the alternatives so a stale
// snapshot or an empty indexer degrades to today's behaviour instead of
// failing.
func (n *Node) buildRouter() routing.Router {
	base := routing.NewDHT(n.dht)
	newAccel := func(fallback routing.Router) *routing.AcceleratedRouter {
		n.accel = routing.NewAccelerated(n.sw, fallback, routing.AcceleratedConfig{
			K:           n.cfg.K,
			Parallelism: n.cfg.Alpha,
			RPCTimeout:  n.cfg.QueryTimeout,
			Base:        n.cfg.Base,
			Now:         n.cfg.Now,
			Time:        n.cfg.Time,
		})
		return n.accel
	}
	newIndexer := func(fallback routing.Router) *routing.IndexerRouter {
		r := routing.NewIndexerRouter(n.sw, n.cfg.Indexers, fallback, routing.IndexerRouterConfig{
			RPCTimeout: n.cfg.QueryTimeout,
			Base:       n.cfg.Base,
			Now:        n.cfg.Now,
			Time:       n.cfg.Time,
		})
		if n.cfg.IndexerSet != nil {
			r.SetIndexerSet(n.cfg.IndexerSet)
		}
		return r
	}
	switch n.cfg.Routing {
	case routing.KindAccelerated:
		return newAccel(base)
	case routing.KindIndexer:
		return newIndexer(base)
	case routing.KindParallel:
		// Members race without their own DHT fallbacks: the base member
		// already walks, and a doubled walk would waste RPCs.
		members := []routing.Router{base, newAccel(nil)}
		if len(n.cfg.Indexers) > 0 || n.cfg.IndexerSet != nil {
			members = append(members, newIndexer(nil))
		}
		return routing.NewParallel(members...)
	default:
		return base
	}
}

// Router exposes the node's content router.
func (n *Node) Router() routing.Router { return n.router }

// SetRouter swaps the content router (experiments wire custom stacks),
// rebinding Bitswap's session routing and the
// Accelerated()/RefreshRoutingSnapshot helpers to the new stack.
func (n *Node) SetRouter(r routing.Router) {
	n.router = r
	n.accel = findAccelerated(r)
	n.bswap.SetRouting(r)
}

// findAccelerated locates an accelerated client in a router stack.
func findAccelerated(r routing.Router) *routing.AcceleratedRouter {
	switch v := r.(type) {
	case *routing.AcceleratedRouter:
		return v
	case *routing.ParallelRouter:
		for _, m := range v.Members() {
			if a := findAccelerated(m); a != nil {
				return a
			}
		}
	}
	return nil
}

// Accelerated returns the accelerated client when one is configured,
// else nil.
func (n *Node) Accelerated() *routing.AcceleratedRouter { return n.accel }

// Telemetry exposes the node's trace recorder and metrics registry.
func (n *Node) Telemetry() *telemetry.Recorder { return n.tel }

// RefreshRoutingSnapshot crawls the network into the accelerated
// client's snapshot, seeding the crawl from the node's routing table.
// It is a no-op for nodes without an accelerated client.
func (n *Node) RefreshRoutingSnapshot(ctx context.Context) (int, error) {
	if n.accel == nil {
		return 0, nil
	}
	var bootstrap []wire.PeerInfo
	for _, id := range n.dht.Table().AllPeers() {
		info := wire.PeerInfo{ID: id}
		if addrs, ok := n.sw.Book().Get(id); ok {
			info.Addrs = addrs
		}
		bootstrap = append(bootstrap, info)
	}
	size, err := n.accel.Refresh(ctx, bootstrap)
	if err == nil {
		n.tel.Registry().Gauge("snapshot_peers").Set(float64(size))
	}
	return size, err
}

// handle dispatches inbound requests to the owning subsystem.
func (n *Node) handle(ctx context.Context, from peer.ID, req wire.Message) wire.Message {
	switch req.Type {
	case wire.TWantHave, wire.TWantBlock:
		return n.bswap.HandleMessage(ctx, from, req)
	case wire.TDialBack:
		return n.sw.HandleDialBack(ctx, req)
	case wire.TRelayReserve:
		return n.sw.HandleRelayReserve(from, req)
	case wire.TRelay:
		return n.sw.HandleRelay(ctx, from, req)
	case wire.TIdentify:
		return wire.Message{Type: wire.TNodes, Peers: []wire.PeerInfo{{ID: n.ident.ID, Addrs: n.sw.Addrs()}}}
	default:
		return n.dht.HandleMessage(ctx, from, req)
	}
}

// ID returns the node's PeerID.
func (n *Node) ID() peer.ID { return n.ident.ID }

// Identity returns the node's key pair.
func (n *Node) Identity() peer.Identity { return n.ident }

// Addrs returns the node's listen multiaddresses.
func (n *Node) Addrs() []multiaddr.Multiaddr { return n.sw.Addrs() }

// Info returns the node's PeerInfo for bootstrapping others.
func (n *Node) Info() wire.PeerInfo {
	return wire.PeerInfo{ID: n.ident.ID, Addrs: n.sw.Addrs()}
}

// Region returns the configured region.
func (n *Node) Region() geo.Region { return n.cfg.Region }

// DHT exposes the node's DHT.
func (n *Node) DHT() *dht.DHT { return n.dht }

// Swarm exposes connection management.
func (n *Node) Swarm() *swarm.Swarm { return n.sw }

// Bitswap exposes the exchange engine.
func (n *Node) Bitswap() *bitswap.Bitswap { return n.bswap }

// Store exposes the local blockstore.
func (n *Node) Store() block.Store { return n.store }

// Pinner exposes the store's pinning surface; for stores without pin
// support it is a no-op whose Pinned always reports false.
func (n *Node) Pinner() block.Pinner { return n.pin }

// ClearStore drops unpinned blocks on stores that support bulk reset
// (the experiment harnesses' between-iteration reset); otherwise it is
// a no-op.
func (n *Node) ClearStore() {
	if c, ok := n.store.(block.Clearer); ok {
		c.Clear()
	}
}

// noopPinner backs Pinner for stores without pin support.
type noopPinner struct{}

func (noopPinner) Pin(cid.Cid)         {}
func (noopPinner) Unpin(cid.Cid)       {}
func (noopPinner) Pinned(cid.Cid) bool { return false }

// Close shuts the node down, closing the blockstore when it holds
// resources (PackStore's background flusher and volume files).
func (n *Node) Close() error {
	err := n.sw.Close()
	if c, ok := n.store.(interface{ Close() error }); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Add imports content into the local node: chunk, build the Merkle DAG,
// allocate the root CID (Figure 3 step 1). Nothing leaves the machine.
func (n *Node) Add(data []byte) (cid.Cid, error) {
	return n.builder.Add(data)
}

// AddTree imports a path→content map as a UnixFS directory tree and
// returns the root directory CID, addressable as /ipfs/{CID}/{path}.
func (n *Node) AddTree(files map[string][]byte) (cid.Cid, error) {
	return unixfs.AddTree(n.store, n.builder, files)
}

// Cat reassembles locally stored content.
func (n *Node) Cat(root cid.Cid) ([]byte, error) {
	return merkledag.Assemble(n.store, root)
}

// CatPath resolves a UnixFS path beneath a locally stored root and
// returns the file content.
func (n *Node) CatPath(root cid.Cid, path string) ([]byte, error) {
	return unixfs.ReadFile(n.store, root, path)
}

// List returns the entries of a locally stored UnixFS directory.
func (n *Node) List(dir cid.Cid) ([]unixfs.Entry, error) {
	return unixfs.List(n.store, dir)
}

// Has reports whether the full DAG under root is locally available.
func (n *Node) Has(root cid.Cid) bool {
	_, err := merkledag.AllCids(n.store, root)
	return err == nil
}

// PublishResult instruments one content publication (Figures 9a–c).
type PublishResult struct {
	Cid cid.Cid
	dht.ProvideResult
}

// Publish pushes provider records for root through the configured
// router — the k closest DHT peers for the baseline walk (Figure 3
// steps 2–3), the snapshot neighbourhood for the accelerated client, or
// the indexer store. The content must have been Added locally first.
func (n *Node) Publish(ctx context.Context, root cid.Cid) (PublishResult, error) {
	if !n.store.Has(root) {
		return PublishResult{}, fmt.Errorf("core: publish: %s not in local store", root)
	}
	ctx, sp := n.tel.StartTrace(ctx, "publish",
		telemetry.A("cid", root.String()), telemetry.A("router", n.router.Name()))
	defer sp.End()
	// The whole provide tree — walk queries included — is attributed to
	// the publish budget category.
	res, err := n.router.Provide(transport.WithRPCCategory(ctx, transport.CatPublish), root)
	reg := n.tel.Registry()
	reg.Counter("publishes_total", "router", n.router.Name()).Inc()
	if err == nil {
		n.repub.track(root)
		sp.Annotate("stores", fmt.Sprint(res.StoreOK))
	} else {
		reg.Counter("publish_failures", "router", n.router.Name()).Inc()
		sp.Annotate("err", err.Error())
	}
	return PublishResult{Cid: root, ProvideResult: res}, err
}

// AddAndPublish imports data and publishes its provider record.
func (n *Node) AddAndPublish(ctx context.Context, data []byte) (PublishResult, error) {
	root, err := n.Add(data)
	if err != nil {
		return PublishResult{}, err
	}
	return n.Publish(ctx, root)
}

// PublishPeerRecord stores our signed address mapping on the DHT; done
// at startup and on the 12 h republish cycle (§3.1).
func (n *Node) PublishPeerRecord(ctx context.Context) error {
	_, err := n.dht.PublishPeerRecord(ctx)
	return err
}

// Bootstrap joins the network via the canonical bootstrap peers (§2.2).
func (n *Node) Bootstrap(ctx context.Context, peers []wire.PeerInfo) error {
	return n.dht.Bootstrap(ctx, peers)
}

// CheckNATAndSetMode runs AutoNAT (§2.3) and adjusts the DHT mode: more
// than three successful dial-backs upgrade the node to server.
func (n *Node) CheckNATAndSetMode(ctx context.Context) dht.Mode {
	switch n.sw.CheckNAT(ctx, 0) {
	case swarm.NATPublic:
		n.dht.SetMode(dht.ModeServer)
	case swarm.NATPrivate:
		n.dht.SetMode(dht.ModeClient)
	}
	return n.dht.Mode()
}

// PublishIPNS points our IPNS name at root (§3.3).
func (n *Node) PublishIPNS(ctx context.Context, root cid.Cid) error {
	n.ipnsSeq++
	rec := ipns.NewRecord(n.ident, root, n.ipnsSeq, n.cfg.Now(), 0)
	_, err := n.dht.PutIPNS(ctx, ipns.Name(n.ident.ID), rec.Marshal())
	return err
}

// ResolveIPNS resolves a publisher's IPNS name to its current CID.
func (n *Node) ResolveIPNS(ctx context.Context, publisher peer.ID) (cid.Cid, error) {
	data, err := n.dht.GetIPNS(ctx, ipns.Name(publisher))
	if err != nil {
		return cid.Cid{}, err
	}
	rec, err := ipns.Unmarshal(data)
	if err != nil {
		return cid.Cid{}, err
	}
	if err := rec.Validate(ipns.Name(publisher), n.cfg.Now()); err != nil {
		return cid.Cid{}, err
	}
	return rec.Value, nil
}
