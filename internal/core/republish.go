package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/record"
	"repro/internal/transport"
)

// republisher tracks the CIDs this node provides so their records can
// be refreshed on the §3.1 cycle: "the republish interval, by default
// set to 12 h, to make sure that even if the original 20 peers ... go
// offline, the provider will assign new ones within 12 h".
type republisher struct {
	mu   sync.Mutex
	cids map[string]cid.Cid
}

func (r *republisher) track(c cid.Cid) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cids == nil {
		r.cids = make(map[string]cid.Cid)
	}
	r.cids[c.Key()] = c
}

func (r *republisher) list() []cid.Cid {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]cid.Cid, 0, len(r.cids))
	for _, c := range r.cids {
		out = append(out, c)
	}
	return out
}

// Provided returns the CIDs this node currently republishes.
func (n *Node) Provided() []cid.Cid { return n.repub.list() }

// Republish refreshes the provider records of every tracked CID
// through the configured router, plus the node's peer record. It
// returns how many provide operations succeeded. Every RPC underneath
// is attributed to the republish budget category, so the simulator's
// network-wide report separates this background traffic from
// foreground lookups.
func (n *Node) Republish(ctx context.Context) int {
	ctx = transport.WithRPCCategory(ctx, transport.CatRepublish)
	ok := 0
	for _, c := range n.repub.list() {
		if _, err := n.router.Provide(ctx, c); err == nil {
			ok++
		}
	}
	if _, err := n.dht.PublishPeerRecord(ctx); err == nil {
		ok++
	}
	return ok
}

// StartRepublisher runs Republish on the given simulated interval
// (<= 0 selects the 12 h default) until ctx is cancelled.
func (n *Node) StartRepublisher(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = record.DefaultRepublishInterval
	}
	go func() {
		t := time.NewTicker(n.cfg.Base.Real(interval))
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				n.Republish(ctx)
			}
		}
	}()
}
