package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cid"
	"repro/internal/record"
	"repro/internal/routing"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// republisher tracks the CIDs this node provides so their records can
// be refreshed on the §3.1 cycle: "the republish interval, by default
// set to 12 h, to make sure that even if the original 20 peers ... go
// offline, the provider will assign new ones within 12 h".
type republisher struct {
	mu   sync.Mutex
	cids map[string]cid.Cid
}

func (r *republisher) track(c cid.Cid) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cids == nil {
		r.cids = make(map[string]cid.Cid)
	}
	r.cids[c.Key()] = c
}

func (r *republisher) list() []cid.Cid {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]cid.Cid, 0, len(r.cids))
	for _, c := range r.cids {
		out = append(out, c)
	}
	return out
}

// Provided returns the CIDs this node currently republishes.
func (n *Node) Provided() []cid.Cid { return n.repub.list() }

// RepublishStats summarizes one §3.1 republish cycle.
type RepublishStats struct {
	// Batch is the batched record refresh: the cycle's CIDs grouped by
	// target peer, one multi-record RPC per distinct target, with
	// ack-ledger skips for records confirmed earlier in the cycle.
	Batch routing.ProvideManyResult
	// PeerRecordOK reports the node's peer-record refresh succeeded.
	PeerRecordOK bool
	// OK is the legacy success count: provided CIDs plus the peer
	// record.
	OK int
}

// RepublishRecords refreshes the provider records of every tracked CID
// through the router's batched publication surface: the whole batch is
// grouped by target peer (one multi-record ADD_PROVIDER RPC per
// distinct target), and targets that already confirmed a record this
// cycle — a publish minutes before the tick — are skipped via the ack
// ledger. Every RPC underneath is attributed to the republish budget
// category, so the simulator's network-wide report separates this
// background traffic from foreground lookups.
func (n *Node) RepublishRecords(ctx context.Context) routing.ProvideManyResult {
	cids := n.repub.list()
	if len(cids) == 0 {
		return routing.ProvideManyResult{}
	}
	ctx, sp := telemetry.StartSpan(ctx, "provide-many",
		telemetry.A("cids", fmt.Sprint(len(cids))))
	defer sp.End()
	ctx = transport.WithRPCCategory(ctx, transport.CatRepublish)
	res, _ := n.router.ProvideMany(ctx, cids)
	sp.Annotate("provided", fmt.Sprint(res.Provided))
	sp.Annotate("skipped-targets", fmt.Sprint(res.SkippedTargets))
	return res
}

// Republish runs one full republish cycle: the batched record refresh,
// then the node's peer record, then the ack-ledger cycle advance — so
// everything confirmed during this cycle goes stale together and the
// next cycle re-pushes it.
func (n *Node) Republish(ctx context.Context) RepublishStats {
	ctx, sp := n.tel.StartTrace(ctx, "republish", telemetry.A("router", n.router.Name()))
	defer sp.End()
	ctx = transport.WithRPCCategory(ctx, transport.CatRepublish)
	var st RepublishStats
	st.Batch = n.RepublishRecords(ctx)
	st.OK = st.Batch.Provided
	if _, err := n.dht.PublishPeerRecord(ctx); err == nil {
		st.PeerRecordOK = true
		st.OK++
	}
	routing.AdvanceCycle(n.router)
	reg := n.tel.Registry()
	reg.Counter("republish_cycles").Inc()
	reg.Counter("republish_targets").Add(float64(st.Batch.Targets))
	reg.Counter("republish_skipped_targets").Add(float64(st.Batch.SkippedTargets))
	reg.Counter("republish_store_rpcs").Add(float64(st.Batch.StoreRPCs))
	return st
}

// StartRepublisher runs Republish on the given simulated interval
// (<= 0 selects the 12 h default) until ctx is cancelled. The first
// cycle is delayed by a per-peer deterministic jitter so republish
// cycles across a fleet desynchronize instead of thundering-herding
// the same ticks. The loop is a self-rearming timer on the node's time
// source — one queue event per cycle under the event scheduler, and
// leak-free on cancellation (the old time.After variant leaked a real
// timer per jitter wait).
func (n *Node) StartRepublisher(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = record.DefaultRepublishInterval
	}
	jitter := simtime.Jitter(string(n.ident.ID)+"#republish", interval)
	var cycle func(context.Context)
	cycle = func(cctx context.Context) {
		n.Republish(cctx)
		if cctx.Err() == nil {
			n.cfg.Time.AfterFunc(cctx, interval, cycle)
		}
	}
	n.cfg.Time.AfterFunc(ctx, jitter+interval, cycle)
}
