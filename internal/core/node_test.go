package core_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/geo"
	"repro/internal/multicodec"
	"repro/internal/peer"
	"repro/internal/routing"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/testnet"

	"repro/internal/cid"
)

func buildSmallNet(t *testing.T, n int) *testnet.Testnet {
	t.Helper()
	return testnet.Build(testnet.Config{
		N:     n,
		Seed:  11,
		Scale: 0.0004,
		// Keep the small test network clean so retrievals are fast.
		FracDead: 0.0001, FracSlow: 0.0001, FracWSBroken: 0.0001,
	})
}

func TestAddCatLocal(t *testing.T) {
	tn := buildSmallNet(t, 20)
	node := tn.Nodes[0]
	data := bytes.Repeat([]byte("local content "), 1000)
	root, err := node.Add(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := node.Cat(root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("Cat mismatch")
	}
	if !node.Has(root) {
		t.Error("Has should be true after Add")
	}
}

func TestPublishRequiresLocalContent(t *testing.T) {
	tn := buildSmallNet(t, 10)
	c := cid.Sum(multicodec.Raw, []byte("elsewhere"))
	if _, err := tn.Nodes[0].Publish(context.Background(), c); err == nil {
		t.Error("publishing unknown content should fail")
	}
}

func TestPublishAndRetrieve(t *testing.T) {
	tn := buildSmallNet(t, 40)
	publisher := tn.Nodes[0]
	requester := tn.Nodes[25]
	data := bytes.Repeat([]byte{0xAB}, 64*1024)

	pub, err := publisher.AddAndPublish(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	if pub.StoreOK == 0 {
		t.Fatal("no provider records stored")
	}
	if err := publisher.PublishPeerRecord(context.Background()); err != nil {
		t.Fatal(err)
	}

	got, res, err := requester.Retrieve(context.Background(), pub.Cid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("retrieved content mismatch")
	}
	if res.Provider != publisher.ID() {
		t.Errorf("provider = %s, want publisher", res.Provider.Short())
	}
	if res.Bytes != len(data) {
		t.Errorf("bytes = %d", res.Bytes)
	}
	if res.Total <= 0 || res.Fetch <= 0 {
		t.Errorf("durations: %+v", res)
	}
	// No connected peers had it: the Bitswap phase must have run and
	// missed, then the provider walk found it.
	if res.BitswapHit {
		t.Error("BitswapHit should be false for a DHT retrieval")
	}
	if res.ProviderWalk <= 0 {
		t.Error("provider walk duration missing")
	}
	// The requester now has the content locally.
	if !requester.Has(pub.Cid) {
		t.Error("retrieved DAG should be in the local store")
	}
}

func TestRetrieveLocalIsInstant(t *testing.T) {
	tn := buildSmallNet(t, 10)
	node := tn.Nodes[0]
	data := []byte("mine already")
	root, err := node.Add(data)
	if err != nil {
		t.Fatal(err)
	}
	got, res, err := node.Retrieve(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) || res.Discover() != 0 {
		t.Errorf("local retrieve: %+v", res)
	}
}

func TestRetrieveNotFound(t *testing.T) {
	tn := buildSmallNet(t, 15)
	c := cid.Sum(multicodec.Raw, []byte("never published anywhere"))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, _, err := tn.Nodes[0].Retrieve(ctx, c)
	if err == nil {
		t.Error("retrieving unpublished content should fail")
	}
}

func TestRetrieveViaBitswapNeighbour(t *testing.T) {
	// When the requester is already connected to a peer holding the
	// content, the opportunistic Bitswap phase resolves it without any
	// DHT walk (§3.2 step 4).
	tn := buildSmallNet(t, 20)
	holder, requester := tn.Nodes[0], tn.Nodes[1]
	data := bytes.Repeat([]byte{7}, 2048)
	root, err := holder.Add(data)
	if err != nil {
		t.Fatal(err)
	}
	// Connect without publishing anything.
	if _, _, err := requester.Swarm().Connect(context.Background(), holder.ID(), holder.Addrs()); err != nil {
		t.Fatal(err)
	}
	got, res, err := requester.Retrieve(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("content mismatch")
	}
	if !res.BitswapHit {
		t.Error("expected a Bitswap hit")
	}
	if res.ProviderWalk != 0 {
		t.Error("no DHT walk should have run")
	}
}

func TestBitswapMissCostsTimeout(t *testing.T) {
	// With connected peers that do NOT have the content, the serial
	// discovery pays the full 1 s Bitswap timeout before the DHT
	// (§6.2: "retrievals include an extra 1 s").
	tn := buildSmallNet(t, 30)
	publisher, bystander, requester := tn.Nodes[0], tn.Nodes[1], tn.Nodes[2]
	data := []byte("content far away")
	pub, err := publisher.AddAndPublish(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	publisher.PublishPeerRecord(context.Background())
	if _, _, err := requester.Swarm().Connect(context.Background(), bystander.ID(), bystander.Addrs()); err != nil {
		t.Fatal(err)
	}
	_, res, err := requester.Retrieve(context.Background(), pub.Cid)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitswapHit {
		t.Fatal("bystander should not have the content")
	}
	if res.BitswapPhase < 900*time.Millisecond {
		t.Errorf("Bitswap phase = %v, want ~1s timeout", res.BitswapPhase)
	}
	if res.Stretch() <= res.StretchWithoutBitswap() {
		t.Error("removing the Bitswap timeout must reduce the stretch")
	}
}

func TestParallelDiscoverySkipsBitswapPenalty(t *testing.T) {
	// Scale is coarser than the sibling tests: the assertion below is a
	// simulated-time budget, and at 0.0004 one simulated second is only
	// 0.4 ms of real time — scheduler or race-detector overhead alone
	// would blow it.
	tn := testnet.Build(testnet.Config{
		N: 30, Seed: 12, Scale: 0.02,
		FracDead: 0.0001, FracSlow: 0.0001, FracWSBroken: 0.0001,
		ParallelDiscovery: true,
	})
	publisher, bystander, requester := tn.Nodes[0], tn.Nodes[1], tn.Nodes[2]
	pub, err := publisher.AddAndPublish(context.Background(), []byte("race me"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := requester.Swarm().Connect(context.Background(), bystander.ID(), bystander.Addrs()); err != nil {
		t.Fatal(err)
	}
	_, res, err := requester.Retrieve(context.Background(), pub.Cid)
	if err != nil {
		t.Fatal(err)
	}
	// The DHT walk should win well before the 1 s Bitswap timeout.
	if res.Discover() >= time.Second {
		t.Errorf("parallel discovery took %v, want < 1s", res.Discover())
	}
}

func TestIPNSPublishResolve(t *testing.T) {
	tn := buildSmallNet(t, 30)
	publisher, resolver := tn.Nodes[3], tn.Nodes[20]
	ctx := context.Background()
	v1, err := publisher.Add([]byte("site version 1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := publisher.PublishIPNS(ctx, v1); err != nil {
		t.Fatal(err)
	}
	got, err := resolver.ResolveIPNS(ctx, publisher.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v1) {
		t.Errorf("ResolveIPNS = %s, want %s", got, v1)
	}
	// Mutate: same name, new value.
	v2, err := publisher.Add([]byte("site version 2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := publisher.PublishIPNS(ctx, v2); err != nil {
		t.Fatal(err)
	}
	got2, err := resolver.ResolveIPNS(ctx, publisher.ID())
	if err != nil {
		t.Fatal(err)
	}
	if got2.Equal(v1) {
		// Records propagate to the k closest; the resolver may see
		// either version depending on which server answers first, but
		// a fresh walk reaching the closest peers should see v2.
		t.Logf("resolver saw stale version; acceptable but worth noting")
	}
}

func TestCheckNATAndSetMode(t *testing.T) {
	base := simtime.New(0.001)
	net := simnet.New(simnet.Config{Base: base, Seed: 5})
	mk := func(seed int64, dialable bool) *core.Node {
		ident := peer.MustNewIdentity(rand.New(rand.NewSource(seed)))
		ep := net.AddNode(ident.ID, simnet.NodeOpts{Region: "US", Dialable: dialable})
		return core.New(ident, ep, core.Config{Mode: dht.ModeClient, Base: base, Region: "US"})
	}
	natted := mk(1, false)
	ctx := context.Background()
	var others []*core.Node
	for i := int64(0); i < 5; i++ {
		o := mk(10+i, true)
		others = append(others, o)
		if _, _, err := natted.Swarm().Connect(ctx, o.ID(), o.Addrs()); err != nil {
			t.Fatal(err)
		}
	}
	if mode := natted.CheckNATAndSetMode(ctx); mode != dht.ModeClient {
		t.Errorf("NAT'd node mode = %v, want client", mode)
	}
	public := mk(2, true)
	for _, o := range others {
		if _, _, err := public.Swarm().Connect(ctx, o.ID(), o.Addrs()); err != nil {
			t.Fatal(err)
		}
	}
	if mode := public.CheckNATAndSetMode(ctx); mode != dht.ModeServer {
		t.Errorf("public node mode = %v, want server", mode)
	}
}

func TestVantageNodeRetrievesAcrossRegions(t *testing.T) {
	tn := buildSmallNet(t, 40)
	pubV := tn.AddVantage(geo.EuCentral1, 100)
	getV := tn.AddVantage(geo.ApSoutheast2, 101)
	ctx := context.Background()
	pub, err := pubV.AddAndPublish(ctx, bytes.Repeat([]byte{1}, 16*1024))
	if err != nil {
		t.Fatal(err)
	}
	if err := pubV.PublishPeerRecord(ctx); err != nil {
		t.Fatal(err)
	}
	testnet.FlushVantage(getV)
	data, res, err := getV.Retrieve(ctx, pub.Cid)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 16*1024 {
		t.Errorf("len = %d", len(data))
	}
	if res.Total <= 0 {
		t.Error("no total duration")
	}
}

// buildRoutedNet is buildSmallNet with a generous simulated Bitswap
// window: at these scales the 1 s default is well under a millisecond
// of real time, which race-detector scheduling overhead can blow.
func buildRoutedNet(t *testing.T, n int) *testnet.Testnet {
	t.Helper()
	return testnet.Build(testnet.Config{
		N:        n,
		Seed:     11,
		Scale:    0.0004,
		FracDead: 0.0001, FracSlow: 0.0001, FracWSBroken: 0.0001,
		BitswapTimeout: 30 * time.Second,
	})
}

func TestRetrieveRoutedSessionSkipsBroadcast(t *testing.T) {
	// With the accelerated router holding a fresh snapshot, the session
	// peer comes from the router in one hop: no blind WANT-HAVE
	// broadcast, no provider walk, and strictly fewer WANT-HAVEs than
	// the broadcast would have cost.
	tn := buildRoutedNet(t, 60)
	ctx := context.Background()
	publisher := tn.AddVantageRouting("DE", 600, routing.KindAccelerated, nil)
	getter := tn.AddVantageRouting("US", 601, routing.KindAccelerated, nil)
	for _, n := range []*core.Node{publisher, getter} {
		if _, err := n.RefreshRoutingSnapshot(ctx); err != nil {
			t.Fatalf("refresh: %v", err)
		}
	}
	pub, err := publisher.AddAndPublish(ctx, bytes.Repeat([]byte{5}, 32*1024))
	if err != nil {
		t.Fatal(err)
	}
	// Connect bystanders that a blind broadcast would have asked.
	for i := 0; i < 3; i++ {
		b := tn.Nodes[i]
		if _, _, err := getter.Swarm().Connect(ctx, b.ID(), b.Addrs()); err != nil {
			t.Fatal(err)
		}
	}

	data, res, err := getter.Retrieve(ctx, pub.Cid)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 32*1024 {
		t.Errorf("len = %d", len(data))
	}
	if !res.RoutedSession || res.BitswapHit {
		t.Errorf("result = %+v, want a routed session", res)
	}
	if res.ProviderWalk != 0 {
		t.Error("routed session should not pay a provider walk")
	}
	// One targeted WANT-HAVE to the known provider; the confirmed
	// session then starts with WANT-BLOCK directly. The broadcast would
	// have cost one per connected bystander.
	if res.WantHaves != 1 {
		t.Errorf("WantHaves = %d, want exactly 1 targeted ask", res.WantHaves)
	}
	if res.WantBlocks == 0 {
		t.Error("transfer should count WANT-BLOCK messages")
	}
}

func TestRetrieveRouterWithoutProvidersFallsBackToBroadcast(t *testing.T) {
	// Satellite: a routed session whose router returns zero peers must
	// fall back to the opportunistic broadcast. The accelerated getter
	// has a snapshot, but the content was never published anywhere —
	// only a connected neighbour holds it.
	tn := buildRoutedNet(t, 40)
	ctx := context.Background()
	holder := tn.Nodes[0]
	getter := tn.AddVantageRouting("US", 610, routing.KindAccelerated, nil)
	if _, err := getter.RefreshRoutingSnapshot(ctx); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	data := bytes.Repeat([]byte{9}, 4096)
	root, err := holder.Add(data) // added, never published
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := getter.Swarm().Connect(ctx, holder.ID(), holder.Addrs()); err != nil {
		t.Fatal(err)
	}

	got, res, err := getter.Retrieve(ctx, root)
	if err != nil {
		t.Fatalf("zero routed providers must fall back to the broadcast: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("content mismatch")
	}
	if !res.BitswapHit || res.RoutedSession {
		t.Errorf("result = %+v, want a broadcast hit", res)
	}
}
