package core_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/cid"
	"repro/internal/core"
	"repro/internal/multicodec"
	"repro/internal/routing"
	"repro/internal/transport"
	"repro/internal/wire"
)

// stubFallback is a Router that spends no RPCs: it isolates the
// accelerated direct path so the consult-handoff regression test can
// count that path's traffic exactly.
type stubFallback struct{ finds atomic.Int32 }

func (s *stubFallback) Name() string { return "stub" }

func (s *stubFallback) Provide(context.Context, cid.Cid) (routing.ProvideResult, error) {
	return routing.ProvideResult{}, routing.ErrNoProviders
}

func (s *stubFallback) ProvideMany(_ context.Context, cids []cid.Cid) (routing.ProvideManyResult, error) {
	return routing.ProvideManyResult{CIDs: len(cids)}, routing.ErrNoProviders
}

func (s *stubFallback) FindProvidersStream(context.Context, cid.Cid) (routing.ProviderSeq, *routing.StreamInfo) {
	return routing.LazyStream(func() ([]wire.PeerInfo, routing.LookupInfo, error) {
		s.finds.Add(1)
		return nil, routing.LookupInfo{}, routing.ErrNoProviders
	})
}

func (s *stubFallback) SessionPeers(context.Context, cid.Cid, int) ([]wire.PeerInfo, int, error) {
	return nil, 0, routing.ErrNoSessionPeers
}

func (s *stubFallback) WantBroadcast() bool { return true }

// TestRetrieveHandsConsultMissToFindProviders is the end-to-end
// regression for the consult-result handoff: retrieving unpublished
// content through a one-hop router must probe the snapshot
// neighbourhood exactly once (the Bitswap session consult) — the
// follow-up FindProviders inherits the miss and goes straight to its
// fallback instead of re-sending the same RPC wave.
func TestRetrieveHandsConsultMissToFindProviders(t *testing.T) {
	tn := buildSmallNet(t, 30)
	ctx := context.Background()
	getter := tn.AddVantage("US", 700)

	fb := &stubFallback{}
	accel := routing.NewAccelerated(getter.Swarm(), fb, routing.AcceleratedConfig{Base: tn.Base})
	const snapSize = 5
	var infos []wire.PeerInfo
	for _, n := range tn.Nodes[:snapSize] {
		infos = append(infos, n.Info())
	}
	accel.SetSnapshot(infos)
	getter.SetRouter(accel)

	before := tn.Net.Budget()
	_, res, err := getter.Retrieve(ctx, cid.Sum(multicodec.Raw, []byte("never published")))
	if !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("retrieve err = %v, want ErrNotFound", err)
	}
	spent := tn.Net.Budget().Sub(before)

	// The session consult probes every snapshot peer once; the handoff
	// means FindProviders adds zero lookup RPCs on top. Without it the
	// same wave would go out twice.
	if got := spent.Category(transport.CatLookup); got != snapSize {
		t.Errorf("retrieval spent %d lookup RPCs, want exactly %d (one consult wave, no duplicate probe)", got, snapSize)
	}
	if fb.finds.Load() != 1 {
		t.Errorf("fallback consulted %d times, want 1", fb.finds.Load())
	}
	// The consult's RPCs still show up in the per-retrieval accounting.
	if res.LookupMsgs != snapSize {
		t.Errorf("LookupMsgs = %d, want the consult's %d RPCs", res.LookupMsgs, snapSize)
	}
}
