package core_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/block"
	"repro/internal/geo"
	"repro/internal/multicodec"
	"repro/internal/testnet"

	"repro/internal/cid"
)

// TestPackBackedNodeServesRetrieval runs a full publish/retrieve cycle
// with the publisher's blockstore on disk: the Bitswap serve path must
// read through block.Store, and the pack metrics must land in the
// publisher's telemetry registry.
func TestPackBackedNodeServesRetrieval(t *testing.T) {
	ps, err := block.NewPackStore(t.TempDir(), block.PackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tn := buildSmallNet(t, 40)
	pubV := tn.AddVantageStore(geo.EuCentral1, 901, ps)
	getV := tn.AddVantage(geo.ApSoutheast2, 902)
	if pubV.Store() != block.Store(ps) {
		t.Fatal("node not backed by the supplied store")
	}

	ctx := context.Background()
	data := bytes.Repeat([]byte{0xAB}, 16*1024)
	pub, err := pubV.AddAndPublish(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := pubV.PublishPeerRecord(ctx); err != nil {
		t.Fatal(err)
	}
	if !ps.Has(pub.Cid) {
		t.Fatal("added root not in the pack store")
	}

	testnet.FlushVantage(getV)
	got, _, err := getV.Retrieve(ctx, pub.Cid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retrieved data mismatch")
	}

	snap := pubV.Telemetry().Registry().Snapshot()
	if snap.Counters["blockstore_puts{store=pack}"] == 0 {
		t.Error("pack put counter not wired into node telemetry")
	}
	if snap.Counters["blockstore_gets{store=pack}"] == 0 {
		t.Error("Bitswap serving did not read through the pack store")
	}
	if snap.Gauges["pack_live_bytes"] == 0 {
		t.Error("pack_live_bytes gauge not published")
	}

	// The pack store exposes pinning, so the node must surface it.
	pubV.Pinner().Pin(pub.Cid)
	if !ps.Pinned(pub.Cid) {
		t.Error("Pinner() not backed by the pack store")
	}

	// Closing the node closes the store underneath it.
	if err := pubV.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ps.Put(block.New(multicodec.Raw, []byte("after close"))); err == nil {
		t.Error("Put succeeded after node.Close, store was not closed")
	}
}

// TestNodeDefaultStoreIsMem: leaving Config.Store nil keeps the
// historical in-memory behaviour, including pinning and ClearStore.
func TestNodeDefaultStoreIsMem(t *testing.T) {
	tn := buildSmallNet(t, 10)
	node := tn.AddVantage(geo.UsWest1, 903)
	if _, ok := node.Store().(*block.MemStore); !ok {
		t.Fatalf("default store = %T, want *block.MemStore", node.Store())
	}
	c := cid.Sum(multicodec.Raw, []byte("pin me"))
	node.Pinner().Pin(c)
	if !node.Pinner().Pinned(c) {
		t.Error("MemStore pinning not surfaced")
	}
	if _, err := node.Add([]byte("clearable")); err != nil {
		t.Fatal(err)
	}
	node.ClearStore()
	if node.Store().Len() != 0 {
		t.Error("ClearStore left blocks behind")
	}
}

// TestFSBackedNodeNoopPinner: FSStore has no pin surface; the node
// must fall back to a no-op pinner rather than panic.
func TestFSBackedNodeNoopPinner(t *testing.T) {
	fs, err := block.NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tn := buildSmallNet(t, 10)
	node := tn.AddVantageStore(geo.UsWest1, 904, fs)
	c := cid.Sum(multicodec.Raw, []byte("unpinnable"))
	node.Pinner().Pin(c) // must not panic
	if node.Pinner().Pinned(c) {
		t.Error("no-op pinner reported a pin")
	}
	if _, err := node.Add([]byte("fs-backed block")); err != nil {
		t.Fatal(err)
	}
	if node.Store().Len() == 0 {
		t.Error("Add did not land in the fs store")
	}
}
