package core_test

import (
	"bytes"
	"context"
	"testing"
	"time"
)

func TestAddTreeAndCatPath(t *testing.T) {
	tn := buildSmallNet(t, 10)
	node := tn.Nodes[0]
	files := map[string][]byte{
		"site/index.html": []byte("<h1>hi</h1>"),
		"site/app.js":     []byte("console.log(1)"),
		"README.md":       []byte("# root"),
	}
	root, err := node.AddTree(files)
	if err != nil {
		t.Fatal(err)
	}
	got, err := node.CatPath(root, "site/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, files["site/index.html"]) {
		t.Error("CatPath mismatch")
	}
	entries, err := node.List(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 { // README.md + site/
		t.Errorf("root entries = %d", len(entries))
	}
}

func TestDirectoryTreePublishRetrievePath(t *testing.T) {
	tn := buildSmallNet(t, 40)
	publisher, requester := tn.Nodes[0], tn.Nodes[20]
	ctx := context.Background()
	root, err := publisher.AddTree(map[string][]byte{
		"assets/a.bin": bytes.Repeat([]byte{1}, 5000),
		"assets/b.bin": bytes.Repeat([]byte{2}, 5000),
		"index":        []byte("hello"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := publisher.Publish(ctx, root); err != nil {
		t.Fatal(err)
	}
	publisher.PublishPeerRecord(ctx)

	// Retrieve the whole tree, then resolve paths locally.
	if _, _, err := requester.Retrieve(ctx, root); err != nil {
		t.Fatal(err)
	}
	got, err := requester.CatPath(root, "assets/b.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5000 || got[0] != 2 {
		t.Error("path content mismatch after network retrieval")
	}
}

func TestRepublishRestoresRecords(t *testing.T) {
	tn := buildSmallNet(t, 40)
	publisher := tn.Nodes[0]
	ctx := context.Background()
	pub, err := publisher.AddAndPublish(ctx, []byte("republished content"))
	if err != nil {
		t.Fatal(err)
	}
	if got := publisher.Provided(); len(got) != 1 || !got[0].Equal(pub.Cid) {
		t.Fatalf("Provided = %v", got)
	}

	count := func() int {
		n := 0
		for _, other := range tn.Nodes {
			for _, rec := range other.DHT().Providers().Get(pub.Cid) {
				if rec.Provider == publisher.ID() {
					n++
				}
			}
		}
		return n
	}
	before := count()
	if before == 0 {
		t.Fatal("no records after initial publish")
	}
	// Some record holders churn away; their stores vanish with them.
	lost := 0
	for i := 1; i < len(tn.Nodes) && lost < 10; i++ {
		if len(tn.Nodes[i].DHT().Providers().Get(pub.Cid)) > 0 {
			tn.Net.SetOnline(tn.Nodes[i].ID(), false)
			lost++
		}
	}
	// The 12h cycle (run manually here) re-walks the DHT and assigns
	// fresh record holders among the remaining peers.
	st := publisher.Republish(ctx)
	if st.Batch.Provided < 1 {
		t.Errorf("Republish landed records for %d cids, want the tracked cid re-provided", st.Batch.Provided)
	}
	if !st.PeerRecordOK {
		t.Error("Republish did not refresh the peer record")
	}
	for i := range tn.Nodes {
		tn.Net.SetOnline(tn.Nodes[i].ID(), true)
	}
	if after := count(); after < before {
		t.Errorf("record holders after republish = %d, before churn = %d", after, before)
	}
}

func TestStartRepublisherTicks(t *testing.T) {
	tn := buildSmallNet(t, 30)
	publisher := tn.Nodes[0]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pub, err := publisher.AddAndPublish(ctx, []byte("looped"))
	if err != nil {
		t.Fatal(err)
	}
	_ = pub
	// 20 simulated seconds per cycle at scale 0.0004 = 8ms real.
	publisher.StartRepublisher(ctx, 20*time.Second)
	time.Sleep(100 * time.Millisecond)
	cancel()
	// The loop must have run without panicking; records still resolvable.
	provs, _, err := tn.Nodes[5].DHT().FindProviders(context.Background(), pub.Cid)
	if err != nil || len(provs) == 0 {
		t.Errorf("providers after republish loop: %v %v", provs, err)
	}
}
