package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// Registry is a node's labeled metrics registry: counters, gauges and
// latency histograms keyed by name plus sorted "k=v" labels. Metric
// handles are cheap to re-request, so call sites fetch by name at the
// observation point instead of threading handles through layers.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
	}
}

// metricKey builds the canonical "name{k=v,...}" series key from a
// name and alternating key/value label pairs, labels sorted.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, labels[i]+"="+labels[i+1])
	}
	sort.Strings(pairs)
	return name + "{" + strings.Join(pairs, ",") + "}"
}

// Counter is a monotonically increasing metric.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a set-to-current-value metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the last value set.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Hist is a latency metric combining an exact sample (percentiles via
// stats.Sample) with a fixed-bucket stats.Histogram for the bucketed
// debug-endpoint view.
type Hist struct {
	mu     sync.Mutex
	sample *stats.Sample
	hist   *stats.Histogram
}

// Observe records one observation.
func (h *Hist) Observe(x float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.sample.Add(x)
	h.hist.Observe(x, 1)
	h.mu.Unlock()
}

// ObserveDuration records a duration observation in seconds.
func (h *Hist) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Counter returns (creating on first use) the counter for name plus
// alternating key/value label pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[key]
	if c == nil {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge for name + labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[key]
	if g == nil {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the latency histogram for
// name + labels; binWidth fixes the bucket width on first creation.
func (r *Registry) Histogram(name string, binWidth float64, labels ...string) *Hist {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[key]
	if h == nil {
		h = &Hist{sample: stats.NewSample(), hist: stats.NewHistogram(binWidth)}
		r.hists[key] = h
	}
	return h
}

// LatencySnapshot is the exported view of one latency histogram.
type LatencySnapshot struct {
	Count   int                `json:"count"`
	Mean    float64            `json:"mean"`
	P50     float64            `json:"p50"`
	P90     float64            `json:"p90"`
	P99     float64            `json:"p99"`
	Buckets map[string]float64 `json:"buckets,omitempty"`
}

// MetricsSnapshot is a point-in-time export of a registry (or an
// aggregation of several); it marshals deterministically because Go
// maps marshal with sorted keys.
type MetricsSnapshot struct {
	Counters  map[string]float64         `json:"counters"`
	Gauges    map[string]float64         `json:"gauges"`
	Latencies map[string]LatencySnapshot `json:"latencies"`
}

func latencySnapshot(sample *stats.Sample, hist *stats.Histogram) LatencySnapshot {
	ls := LatencySnapshot{Count: sample.Len()}
	if ls.Count > 0 {
		ls.Mean = sample.Mean()
		ls.P50 = sample.Percentile(50)
		ls.P90 = sample.Percentile(90)
		ls.P99 = sample.Percentile(99)
	}
	if len(hist.Counts) > 0 {
		ls.Buckets = make(map[string]float64, len(hist.Counts))
		for _, bin := range hist.Bins() {
			lo := float64(bin) * hist.BinWidth
			ls.Buckets[fmt.Sprintf("[%g,%g)", lo, lo+hist.BinWidth)] = hist.Counts[bin]
		}
	}
	return ls
}

// Snapshot exports the registry's current state.
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:  make(map[string]float64),
		Gauges:    make(map[string]float64),
		Latencies: make(map[string]LatencySnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	hists := make(map[string]*Hist, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.Unlock()
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		h.mu.Lock()
		snap.Latencies[k] = latencySnapshot(h.sample, h.hist)
		h.mu.Unlock()
	}
	return snap
}

// AggregateRegistries merges per-node registries into one network-wide
// snapshot: counters and gauges sum, latency histograms merge their
// raw observations so the aggregated percentiles are exact.
func AggregateRegistries(regs ...*Registry) MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:  make(map[string]float64),
		Gauges:    make(map[string]float64),
		Latencies: make(map[string]LatencySnapshot),
	}
	samples := make(map[string]*stats.Sample)
	hists := make(map[string]*stats.Histogram)
	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		counters := make(map[string]*Counter, len(r.counters))
		for k, c := range r.counters {
			counters[k] = c
		}
		gauges := make(map[string]*Gauge, len(r.gauges))
		for k, g := range r.gauges {
			gauges[k] = g
		}
		rhists := make(map[string]*Hist, len(r.hists))
		for k, h := range r.hists {
			rhists[k] = h
		}
		r.mu.Unlock()
		for k, c := range counters {
			snap.Counters[k] += c.Value()
		}
		for k, g := range gauges {
			snap.Gauges[k] += g.Value()
		}
		for k, h := range rhists {
			h.mu.Lock()
			merged := samples[k]
			if merged == nil {
				merged = stats.NewSample()
				samples[k] = merged
				hists[k] = stats.NewHistogram(h.hist.BinWidth)
			}
			for _, x := range h.sample.Values() {
				merged.Add(x)
			}
			for bin, w := range h.hist.Counts {
				hists[k].Counts[bin] += w
			}
			h.mu.Unlock()
		}
	}
	for k, merged := range samples {
		snap.Latencies[k] = latencySnapshot(merged, hists[k])
	}
	return snap
}

// Render formats the snapshot as aligned text tables for the CLI and
// the human side of the debug endpoints.
func (m MetricsSnapshot) Render() string {
	var b strings.Builder
	if len(m.Counters) > 0 {
		t := stats.NewTable("Counter", "Value")
		for _, k := range sortedKeys(m.Counters) {
			t.AddRow(k, fmt.Sprintf("%.0f", m.Counters[k]))
		}
		b.WriteString(t.String())
	}
	if len(m.Gauges) > 0 {
		t := stats.NewTable("Gauge", "Value")
		for _, k := range sortedKeys(m.Gauges) {
			t.AddRow(k, fmt.Sprintf("%.2f", m.Gauges[k]))
		}
		b.WriteString(t.String())
	}
	if len(m.Latencies) > 0 {
		t := stats.NewTable("Latency", "Count", "Mean", "P50", "P90", "P99")
		keys := make([]string, 0, len(m.Latencies))
		for k := range m.Latencies {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ls := m.Latencies[k]
			t.AddRow(k, ls.Count,
				fmt.Sprintf("%.3f", ls.Mean), fmt.Sprintf("%.3f", ls.P50),
				fmt.Sprintf("%.3f", ls.P90), fmt.Sprintf("%.3f", ls.P99))
		}
		b.WriteString(t.String())
	}
	return b.String()
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DiscoverP99 returns the 99th percentile of the sim-accurate
// "discover" span duration across the retrieve traces — the tail of
// the provider-discovery phase the paper's delay decomposition
// isolates. Zero when no retrieve traces carry a discover span.
func DiscoverP99(traces []*Trace) time.Duration {
	s := stats.NewSample()
	for _, tr := range traces {
		if tr == nil || tr.Op != "retrieve" {
			continue
		}
		if sp := tr.FindSpan("discover"); sp != nil {
			s.Add(tr.SpanWall(sp).Seconds())
		}
	}
	if s.Len() == 0 {
		return 0
	}
	return time.Duration(s.Percentile(99) * float64(time.Second))
}

// FirstHopShare returns the fraction of retrieve traces whose discover
// phase resolved a provider within at most one lookup-category RPC —
// the one-hop share the accelerated and indexer routers exist to
// maximize. NaN when no retrieve traces carry a discover span.
func FirstHopShare(traces []*Trace) float64 {
	n, oneHop := 0, 0
	for _, tr := range traces {
		if tr == nil || tr.Op != "retrieve" {
			continue
		}
		sp := tr.FindSpan("discover")
		if sp == nil {
			continue
		}
		n++
		if tr.lookupRPCs(sp) <= 1 {
			oneHop++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return float64(oneHop) / float64(n)
}

// lookupRPCs counts lookup-category RPC events in sp's subtree.
func (t *Trace) lookupRPCs(sp *Span) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return countLookupRPCs(sp)
}

func countLookupRPCs(sp *Span) int {
	n := 0
	for _, ev := range sp.Events {
		if ev.Name != "rpc" {
			continue
		}
		for _, a := range ev.Attrs {
			if a.Key == "cat" && a.Value == "lookup" {
				n++
				break
			}
		}
	}
	for _, child := range sp.children {
		n += countLookupRPCs(child)
	}
	return n
}
