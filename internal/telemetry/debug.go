package telemetry

import (
	"encoding/json"
	"net/http"
)

// Handler serves the live introspection endpoints over a recorder:
//
//	/debug/metrics    — the metrics registry as a JSON MetricsSnapshot
//	/debug/trace/last — the most recent trace as JSONL span records
//
// Mount it on the same mux as the application handlers; both cmd
// binaries do.
func Handler(rec *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rec.Registry().Snapshot())
	})
	mux.HandleFunc("/debug/trace/last", func(w http.ResponseWriter, _ *http.Request) {
		tr := rec.Last()
		if tr == nil {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte("{}\n"))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		tr.WriteJSONL(w)
	})
	return mux
}
