// Package telemetry is the observability layer of the reproduction:
// request-scoped trace spans carried on the context, a labeled metrics
// registry per node, and the render/export surfaces the debug
// endpoints and the experiment harness read through.
//
// A Trace decomposes one operation (a retrieval, a publication, a
// republish cycle) into a tree of Spans — discover, first-provider,
// fetch, the DHT walk, each WANT-HAVE wave — with structured Events
// underneath, down to every transport RPC. Span IDs and timestamps
// derive from the seeded run (the simulated clock plus a per-trace
// sequence), so the Stable* renders are byte-identical across runs of
// the same seed and can be golden-pinned. Measured wall durations are
// sim-accurate via simtime.Base but depend on goroutine scheduling;
// they appear only in the human renders and the derived statistics
// (DiscoverP99), never in the stable renders.
//
// The whole surface is nil-safe: methods on a nil *Registry return nil
// metrics, and methods on nil *Counter/*Gauge/*Histogram no-op, so
// instrumented code never guards on whether telemetry is wired. The
// debug endpoints (debug.go) expose the registry at /debug/metrics and
// the most recent trace tree at /debug/trace/last.
package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/simtime"
)

// Attr is one ordered key/value annotation on a span or event.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A builds an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Event is one structured record inside a span: a DHT walk hop, a
// transport RPC, a Bitswap HAVE.
type Event struct {
	Seq   int // per-trace sequence (arrival order, not stable)
	Name  string
	At    time.Time     // trace-clock instant
	Dur   time.Duration // measured sim-accurate latency, zero when n/a
	Attrs []Attr
}

// Span is one timed operation inside a trace. All methods are safe on
// a nil receiver, so un-traced call paths cost a nil check.
type Span struct {
	tr *Trace

	ID     int // per-trace sequence number (deterministic on serial paths)
	Parent int // parent span ID, 0 for the root
	Name   string
	Start  time.Time     // trace-clock instant the span opened
	Stop   time.Time     // trace-clock instant End ran (zero while open)
	Wall   time.Duration // sim-accurate elapsed time (human renders only)
	Attrs  []Attr
	Events []Event

	wallStart time.Time
	children  []*Span
	ended     bool
}

// End closes the span, recording its sim-accurate elapsed time.
// Closing twice is a no-op, so racers can defer End unconditionally.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.Stop = s.tr.src.Now()
	s.Wall = s.tr.src.Since(s.wallStart)
	s.tr.open--
}

// Annotate attaches a key/value annotation to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{key, value})
	s.tr.mu.Unlock()
}

// Event records a structured event on the span.
func (s *Span) Event(name string, attrs ...Attr) { s.EventDur(name, 0, attrs...) }

// EventDur records an event carrying a measured sim-accurate duration
// (a transport RPC's latency). Events may be appended from concurrent
// goroutines; the stable renders sort them.
func (s *Span) EventDur(name string, dur time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.tr.seq++
	s.Events = append(s.Events, Event{Seq: s.tr.seq, Name: name, At: s.tr.src.Now(), Dur: dur, Attrs: attrs})
	s.tr.mu.Unlock()
}

// Trace is one operation's span tree.
type Trace struct {
	Op string // the root operation ("retrieve", "publish", "republish")
	ID int64  // per-recorder sequence

	mu    sync.Mutex
	src   simtime.Source
	seq   int
	spans []*Span
	root  *Span
	open  int
}

func (t *Trace) startSpan(parent *Span, name string, attrs ...Attr) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	sp := &Span{
		tr: t, ID: t.seq, Name: name,
		Start: t.src.Now(), wallStart: t.src.Stamp(), Attrs: attrs,
	}
	if parent != nil {
		sp.Parent = parent.ID
		parent.children = append(parent.children, sp)
	}
	t.spans = append(t.spans, sp)
	if t.root == nil {
		t.root = sp
	}
	t.open++
	return sp
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// OpenSpans returns the number of spans started but not yet ended —
// the leak detector the cancellation tests assert on.
func (t *Trace) OpenSpans() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open
}

// FindSpan returns the first span (in creation order) with the given
// name, or nil.
func (t *Trace) FindSpan(name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sp := range t.spans {
		if sp.Name == name {
			return sp
		}
	}
	return nil
}

// SpanWall returns a span's sim-accurate elapsed time under the trace
// lock (End may race with a reader on another goroutine).
func (t *Trace) SpanWall(sp *Span) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return sp.Wall
}

// spanRecord is the JSONL export schema: one line per span.
type spanRecord struct {
	Trace  int64         `json:"trace"`
	Op     string        `json:"op"`
	ID     int           `json:"id"`
	Parent int           `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Stop   *time.Time    `json:"stop,omitempty"`
	WallUS int64         `json:"wall_us,omitempty"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	Events []eventRecord `json:"events,omitempty"`
}

type eventRecord struct {
	Seq   int       `json:"seq,omitempty"`
	Name  string    `json:"name"`
	At    time.Time `json:"at"`
	DurUS int64     `json:"dur_us,omitempty"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// WriteJSONL exports the full trace, one JSON object per span in
// creation order, including the measured (nondeterministic) wall
// durations and latencies.
func (t *Trace) WriteJSONL(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, sp := range t.spans {
		rec := spanRecord{
			Trace: t.ID, Op: t.Op, ID: sp.ID, Parent: sp.Parent, Name: sp.Name,
			Start: sp.Start, WallUS: sp.Wall.Microseconds(),
			Attrs: sp.Attrs,
		}
		if sp.ended {
			stop := sp.Stop
			rec.Stop = &stop
		}
		for _, ev := range sp.Events {
			rec.Events = append(rec.Events, eventRecord{
				Seq: ev.Seq, Name: ev.Name, At: ev.At,
				DurUS: ev.Dur.Microseconds(), Attrs: ev.Attrs,
			})
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// StableJSONL renders the deterministic projection of the trace: span
// IDs, names, attrs and clock timestamps, with events sorted by
// (name, attrs) and stripped of sequence numbers and measured
// latencies — byte-identical across runs of the same seed.
func (t *Trace) StableJSONL() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, sp := range t.spans {
		rec := spanRecord{
			Trace: t.ID, Op: t.Op, ID: sp.ID, Parent: sp.Parent, Name: sp.Name,
			Start: sp.Start, Attrs: sp.Attrs,
		}
		if sp.ended {
			stop := sp.Stop
			rec.Stop = &stop
		}
		for _, ev := range stableEvents(sp.Events) {
			rec.Events = append(rec.Events, eventRecord{Name: ev.Name, At: ev.At, Attrs: ev.Attrs})
		}
		enc.Encode(rec)
	}
	return b.String()
}

// Tree renders the span tree as an indented timeline with measured
// durations — the human view of one slow retrieval.
func (t *Trace) Tree() string { return t.tree(true) }

// StableTree renders the span tree without measured durations or
// latencies and with events sorted, for golden pinning.
func (t *Trace) StableTree() string { return t.tree(false) }

func (t *Trace) tree(withWall bool) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "trace #%d %s\n", t.ID, t.Op)
	if t.root != nil {
		t.renderSpan(&b, t.root, 0, withWall)
	}
	return b.String()
}

func (t *Trace) renderSpan(b *strings.Builder, sp *Span, depth int, withWall bool) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s #%d", indent, sp.Name, sp.ID)
	if withWall && sp.ended {
		fmt.Fprintf(b, " [%s]", fmtSimDur(sp.Wall))
	}
	for _, a := range sp.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	events := sp.Events
	if !withWall {
		events = stableEvents(events)
	}
	for _, ev := range events {
		fmt.Fprintf(b, "%s  · %s", indent, ev.Name)
		for _, a := range ev.Attrs {
			fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
		}
		if withWall && ev.Dur > 0 {
			fmt.Fprintf(b, " [%s]", fmtSimDur(ev.Dur))
		}
		b.WriteByte('\n')
	}
	for _, child := range sp.children {
		t.renderSpan(b, child, depth+1, withWall)
	}
}

// stableEvents returns the events sorted by (name, attrs) so the
// render does not depend on concurrent arrival order.
func stableEvents(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.SliceStable(out, func(i, j int) bool {
		return eventSortKey(out[i]) < eventSortKey(out[j])
	})
	return out
}

func eventSortKey(ev Event) string {
	parts := make([]string, 0, 1+len(ev.Attrs))
	parts = append(parts, ev.Name)
	for _, a := range ev.Attrs {
		parts = append(parts, a.Key+"="+a.Value)
	}
	return strings.Join(parts, "\x00")
}

// fmtSimDur renders a simulated duration compactly.
func fmtSimDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// spanKey carries the current *Span on the context.
type spanKey struct{}

// SpanFrom returns the span the context carries, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// TraceFrom returns the trace the context carries, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if sp := SpanFrom(ctx); sp != nil {
		return sp.tr
	}
	return nil
}

// StartSpan opens a child span under the context's current span and
// returns the derived context carrying it. With no trace on the
// context it returns (ctx, nil) — every layer can instrument
// unconditionally and pay only a context lookup when untraced.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.tr.startSpan(parent, name, attrs...)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// RPC records one transport request as an event on the context's
// current span: message type, budget category, remote peer and the
// sim-accurate latency. No-op when the context carries no trace.
func RPC(ctx context.Context, msgType, category, peer string, latency time.Duration, errStr string) {
	sp := SpanFrom(ctx)
	if sp == nil {
		return
	}
	attrs := []Attr{A("type", msgType), A("cat", category), A("peer", peer)}
	if errStr != "" {
		attrs = append(attrs, A("err", errStr))
	}
	sp.EventDur("rpc", latency, attrs...)
}

// RPCDrop records a transport request lost to link faults or a regional
// partition as a distinct "rpc-drop" event on the context's current
// span: message type, budget category, remote peer, how long the caller
// waited before detecting the loss, and which transmit attempt was lost
// (0 = the first send, higher = an automatic retransmit). No-op when
// the context carries no trace.
func RPCDrop(ctx context.Context, msgType, category, peer string, wait time.Duration, attempt int, errStr string) {
	sp := SpanFrom(ctx)
	if sp == nil {
		return
	}
	sp.EventDur("rpc-drop", wait,
		A("type", msgType), A("cat", category), A("peer", peer),
		A("attempt", fmt.Sprintf("%d", attempt)), A("err", errStr))
}

// traceRingCap bounds the per-recorder trace history.
const traceRingCap = 128

// Recorder owns one node's telemetry: the trace ring and the metrics
// registry. Trace IDs are a per-recorder sequence and timestamps come
// from the recorder's clock (the simulated scenario clock when the
// node runs under one), so a seeded run produces identical IDs and
// instants every time.
type Recorder struct {
	mu     sync.Mutex
	src    simtime.Source
	nextID int64
	traces []*Trace
	reg    *Registry
}

// NewRecorder builds a recorder over the node's time source; nil falls
// back to the real-time adapter (wall clock, unscaled durations).
func NewRecorder(src simtime.Source) *Recorder {
	if src == nil {
		src = simtime.NewBaseSource(simtime.Realtime, nil)
	}
	return &Recorder{src: src, reg: NewRegistry()}
}

// Registry returns the recorder's metrics registry.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// StartTrace opens a new trace (and its root span) for one operation
// and returns the context carrying it. When the context already
// carries a trace — a publish nested inside a retrieve — it opens a
// child span on the existing trace instead, keeping one operation one
// tree. Safe on a nil recorder.
func (r *Recorder) StartTrace(ctx context.Context, op string, attrs ...Attr) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	if SpanFrom(ctx) != nil {
		return StartSpan(ctx, op, attrs...)
	}
	r.mu.Lock()
	r.nextID++
	tr := &Trace{Op: op, ID: r.nextID, src: r.src}
	r.traces = append(r.traces, tr)
	if len(r.traces) > traceRingCap {
		r.traces = r.traces[1:]
	}
	r.mu.Unlock()
	sp := tr.startSpan(nil, op, attrs...)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// Last returns the most recent trace, or nil.
func (r *Recorder) Last() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.traces) == 0 {
		return nil
	}
	return r.traces[len(r.traces)-1]
}

// Traces returns a copy of the retained trace ring, oldest first.
func (r *Recorder) Traces() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Trace(nil), r.traces...)
}

// Drain returns the retained traces and clears the ring — the
// scenario engine's per-phase sampling primitive.
func (r *Recorder) Drain() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.traces
	r.traces = nil
	return out
}
