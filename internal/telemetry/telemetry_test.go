package telemetry

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
)

// frozenClock returns a clock pinned to a fixed instant, the
// deterministic timestamp source scenario runs use.
func frozenClock() func() time.Time {
	at := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time { return at }
}

func TestTraceSpanTreeAndContext(t *testing.T) {
	rec := NewRecorder(simtime.NewBaseSource(simtime.Realtime, frozenClock()))
	ctx, root := rec.StartTrace(context.Background(), "retrieve", A("cid", "bafy1"))
	if root == nil {
		t.Fatal("StartTrace returned a nil root span")
	}
	tr := TraceFrom(ctx)
	if tr == nil || tr.Op != "retrieve" || tr.ID != 1 {
		t.Fatalf("TraceFrom = %+v, want retrieve trace #1", tr)
	}

	dctx, discover := StartSpan(ctx, "discover")
	RPC(dctx, "GET_PROVIDERS", "lookup", "peerA", 40*time.Millisecond, "")
	_, wave := StartSpan(dctx, "want-wave")
	wave.Event("have", A("peer", "peerB"))
	wave.End()
	discover.End()

	_, fetch := StartSpan(ctx, "fetch")
	RPC(ctx, "WANT_BLOCK", "want", "peerB", 90*time.Millisecond, "")
	fetch.End()
	root.End()

	if got := tr.OpenSpans(); got != 0 {
		t.Errorf("OpenSpans = %d after ending every span, want 0", got)
	}
	// Span IDs are the per-trace sequence: root=1, discover=2 (an RPC
	// event takes seq 3), want-wave=4 ...
	if discover.ID != 2 || discover.Parent != 1 {
		t.Errorf("discover span ID/Parent = %d/%d, want 2/1", discover.ID, discover.Parent)
	}
	if wave.Parent != discover.ID {
		t.Errorf("want-wave parent = %d, want %d", wave.Parent, discover.ID)
	}
	if sp := tr.FindSpan("want-wave"); sp != wave {
		t.Error("FindSpan(want-wave) did not return the span")
	}

	tree := tr.StableTree()
	for _, want := range []string{"retrieve #1 cid=bafy1", "  discover #2", "· rpc type=GET_PROVIDERS cat=lookup peer=peerA", "    · have peer=peerB", "  fetch #"} {
		if !strings.Contains(tree, want) {
			t.Errorf("stable tree missing %q:\n%s", want, tree)
		}
	}
	if strings.Contains(tree, "ms") || strings.Contains(tree, "[") {
		t.Errorf("stable tree leaks measured durations:\n%s", tree)
	}
	if !strings.Contains(tr.Tree(), "[") {
		t.Error("human tree should carry measured durations")
	}
}

func TestStableRendersAreDeterministic(t *testing.T) {
	build := func() *Trace {
		rec := NewRecorder(simtime.NewBaseSource(simtime.Realtime, frozenClock()))
		ctx, root := rec.StartTrace(context.Background(), "retrieve")
		dctx, discover := StartSpan(ctx, "discover")
		// Concurrent-looking arrival order: append events in a different
		// order per build; the stable renders must sort them away.
		if time.Now().UnixNano()%2 == 0 {
			RPC(dctx, "GET_PROVIDERS", "lookup", "peerB", 10*time.Millisecond, "")
			RPC(dctx, "GET_PROVIDERS", "lookup", "peerA", 99*time.Millisecond, "")
		} else {
			RPC(dctx, "GET_PROVIDERS", "lookup", "peerA", 5*time.Millisecond, "")
			RPC(dctx, "GET_PROVIDERS", "lookup", "peerB", 7*time.Millisecond, "")
		}
		discover.End()
		root.End()
		return TraceFrom(ctx)
	}
	a, b := build(), build()
	if a.StableTree() != b.StableTree() {
		t.Errorf("stable trees differ:\n%s\nvs\n%s", a.StableTree(), b.StableTree())
	}
	if a.StableJSONL() != b.StableJSONL() {
		t.Errorf("stable JSONL differs:\n%s\nvs\n%s", a.StableJSONL(), b.StableJSONL())
	}
	// Every stable JSONL line must be valid JSON with the trace ID.
	for _, line := range strings.Split(strings.TrimSpace(a.StableJSONL()), "\n") {
		var rec spanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stable JSONL line is not JSON: %v\n%s", err, line)
		}
		if rec.Trace != 1 || rec.Op != "retrieve" {
			t.Errorf("span record = %+v, want trace 1 op retrieve", rec)
		}
	}
}

func TestUntracedContextIsNoop(t *testing.T) {
	ctx := context.Background()
	sctx, sp := StartSpan(ctx, "discover")
	if sp != nil || sctx != ctx {
		t.Error("StartSpan on an untraced context must return (ctx, nil)")
	}
	// All of these must be safe no-ops.
	sp.End()
	sp.Annotate("k", "v")
	sp.Event("ev")
	RPC(ctx, "PING", "other", "p", time.Millisecond, "")
	var rec *Recorder
	rctx, rsp := rec.StartTrace(ctx, "retrieve")
	if rsp != nil || rctx != ctx {
		t.Error("nil recorder StartTrace must return (ctx, nil)")
	}
	if rec.Last() != nil || rec.Drain() != nil || rec.Registry() != nil {
		t.Error("nil recorder accessors must return zero values")
	}
}

func TestRecorderDrainAndNestedTrace(t *testing.T) {
	rec := NewRecorder(simtime.NewBaseSource(simtime.Realtime, frozenClock()))
	ctx, root := rec.StartTrace(context.Background(), "retrieve")
	// A publish nested under the retrieve joins the same trace.
	_, nested := rec.StartTrace(ctx, "publish")
	if got := TraceFrom(ctx); nested == nil || nested.tr != got {
		t.Error("nested StartTrace must open a child span on the same trace")
	}
	nested.End()
	root.End()
	rec.StartTrace(context.Background(), "republish")

	if rec.Last().Op != "republish" {
		t.Errorf("Last().Op = %q, want republish", rec.Last().Op)
	}
	drained := rec.Drain()
	if len(drained) != 2 {
		t.Fatalf("Drain returned %d traces, want 2", len(drained))
	}
	if drained[0].ID != 1 || drained[1].ID != 2 {
		t.Errorf("trace IDs = %d,%d, want 1,2", drained[0].ID, drained[1].ID)
	}
	if rec.Last() != nil || len(rec.Traces()) != 0 {
		t.Error("Drain must clear the ring")
	}
}

func TestRegistrySnapshotAndAggregate(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("rpc_total", "cat", "lookup").Add(3)
	a.Counter("rpc_total", "cat", "lookup").Inc() // same handle by key
	b.Counter("rpc_total", "cat", "lookup").Add(6)
	a.Gauge("snapshot_peers").Set(40)
	b.Gauge("snapshot_peers").Set(2)
	for _, v := range []float64{0.1, 0.2, 0.3} {
		a.Histogram("retrieve_seconds", 0.5).Observe(v)
	}
	b.Histogram("retrieve_seconds", 0.5).ObserveDuration(900 * time.Millisecond)

	snap := a.Snapshot()
	if got := snap.Counters["rpc_total{cat=lookup}"]; got != 4 {
		t.Errorf("counter = %v, want 4", got)
	}
	if got := snap.Latencies["retrieve_seconds"]; got.Count != 3 || got.P50 != 0.2 {
		t.Errorf("latency snapshot = %+v, want count 3 p50 0.2", got)
	}
	if got := snap.Latencies["retrieve_seconds"].Buckets["[0,0.5)"]; got != 3 {
		t.Errorf("bucket [0,0.5) = %v, want 3", got)
	}

	agg := AggregateRegistries(a, b, nil)
	if got := agg.Counters["rpc_total{cat=lookup}"]; got != 10 {
		t.Errorf("aggregated counter = %v, want 10", got)
	}
	if got := agg.Gauges["snapshot_peers"]; got != 42 {
		t.Errorf("aggregated gauge = %v, want 42", got)
	}
	lat := agg.Latencies["retrieve_seconds"]
	if lat.Count != 4 || lat.P99 < 0.3 {
		t.Errorf("aggregated latency = %+v, want count 4 with the 0.9s tail", lat)
	}
	if lat.Buckets["[0.5,1)"] != 1 {
		t.Errorf("aggregated buckets = %v, want one observation in [0.5,1)", lat.Buckets)
	}
	if r := agg.Render(); !strings.Contains(r, "rpc_total{cat=lookup}") || !strings.Contains(r, "retrieve_seconds") {
		t.Errorf("render missing series:\n%s", r)
	}
}

func TestDiscoverAnalytics(t *testing.T) {
	rec := NewRecorder(simtime.NewBaseSource(simtime.Realtime, frozenClock()))
	mk := func(lookups int, wall time.Duration) *Trace {
		ctx, root := rec.StartTrace(context.Background(), "retrieve")
		dctx, discover := StartSpan(ctx, "discover")
		for i := 0; i < lookups; i++ {
			RPC(dctx, "GET_PROVIDERS", "lookup", "p", time.Millisecond, "")
		}
		discover.End()
		root.End()
		tr := TraceFrom(ctx)
		// Pin the measured duration for the test; live spans fill it from
		// simtime.
		tr.mu.Lock()
		discover.Wall = wall
		tr.mu.Unlock()
		return tr
	}
	traces := []*Trace{mk(1, 100*time.Millisecond), mk(1, 200*time.Millisecond), mk(7, 2*time.Second)}
	if p99 := DiscoverP99(traces); p99 < 1500*time.Millisecond || p99 > 2*time.Second {
		t.Errorf("DiscoverP99 = %v, want near the 2s tail", p99)
	}
	if share := FirstHopShare(traces); math.Abs(share-2.0/3) > 1e-9 {
		t.Errorf("FirstHopShare = %v, want 2/3", share)
	}
	if !math.IsNaN(FirstHopShare(nil)) || DiscoverP99(nil) != 0 {
		t.Error("empty trace sets must return NaN share and zero p99")
	}
}

func TestDebugHandler(t *testing.T) {
	rec := NewRecorder(simtime.NewBaseSource(simtime.Realtime, frozenClock()))
	rec.Registry().Counter("walk_hops").Add(12)
	ctx, root := rec.StartTrace(context.Background(), "retrieve")
	RPC(ctx, "FIND_NODE", "lookup", "peerA", time.Millisecond, "")
	root.End()

	h := Handler(rec)

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/metrics", nil))
	if w.Code != 200 {
		t.Fatalf("/debug/metrics status = %d", w.Code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/debug/metrics is not JSON: %v", err)
	}
	if snap.Counters["walk_hops"] != 12 {
		t.Errorf("metrics snapshot = %+v, want walk_hops 12", snap.Counters)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/trace/last", nil))
	var span spanRecord
	first := strings.SplitN(w.Body.String(), "\n", 2)[0]
	if err := json.Unmarshal([]byte(first), &span); err != nil {
		t.Fatalf("/debug/trace/last line is not JSON: %v\n%s", err, first)
	}
	if span.Op != "retrieve" || len(span.Events) != 1 {
		t.Errorf("last-trace record = %+v, want the retrieve root with its RPC event", span)
	}
}
