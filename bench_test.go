// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation (see DESIGN.md §3), plus
// the DESIGN.md §5 ablations and micro-benchmarks of the hot data
// structures. Benchmarks report the headline simulated metric of each
// experiment via b.ReportMetric so a -bench run doubles as a shape
// check against the paper.
package repro

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/cid"
	"repro/internal/experiments"
	"repro/internal/gateway"
	"repro/internal/gwload"
	"repro/internal/kbucket"
	"repro/internal/merkledag"
	"repro/internal/multicodec"
	"repro/internal/peer"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// benchPerf runs a small §4.3 experiment; reused by the Table 1/4 and
// Fig 9/10 benchmarks with distinct reporting.
func benchPerf(b *testing.B, report func(*testing.B, *experiments.PerfResults)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res := experiments.RunPerformance(experiments.PerfConfig{
			NetworkSize: 250, IterationsPer: 1, Scale: 0.001, Seed: 42,
		})
		report(b, res)
	}
}

func combinedSample(res *experiments.PerfResults, pick func(*experiments.RegionPerf) *stats.Sample) *stats.Sample {
	all := stats.NewSample()
	for _, rp := range res.Regions {
		for _, v := range pick(rp).Values() {
			all.Add(v)
		}
	}
	return all
}

// BenchmarkTable1PublishRetrieve regenerates Table 1 (operation counts).
func BenchmarkTable1PublishRetrieve(b *testing.B) {
	benchPerf(b, func(b *testing.B, res *experiments.PerfResults) {
		b.ReportMetric(float64(res.Successes), "ops")
		if res.Table1() == "" {
			b.Fatal("empty table")
		}
	})
}

// BenchmarkTable4LatencyPercentiles regenerates Table 4.
func BenchmarkTable4LatencyPercentiles(b *testing.B) {
	benchPerf(b, func(b *testing.B, res *experiments.PerfResults) {
		pub := combinedSample(res, func(rp *experiments.RegionPerf) *stats.Sample { return rp.PubOverall })
		retr := combinedSample(res, func(rp *experiments.RegionPerf) *stats.Sample { return rp.RetrOverall })
		b.ReportMetric(pub.Percentile(50), "pub-p50-s")
		b.ReportMetric(retr.Percentile(50), "retr-p50-s")
	})
}

// BenchmarkFig9Publication regenerates Fig 9a–c (publication CDFs).
func BenchmarkFig9Publication(b *testing.B) {
	benchPerf(b, func(b *testing.B, res *experiments.PerfResults) {
		walk := combinedSample(res, func(rp *experiments.RegionPerf) *stats.Sample { return rp.PubWalk })
		batch := combinedSample(res, func(rp *experiments.RegionPerf) *stats.Sample { return rp.PubBatch })
		b.ReportMetric(walk.Percentile(50), "walk-p50-s")
		b.ReportMetric(batch.Percentile(50), "batch-p50-s")
	})
}

// BenchmarkFig9Retrieval regenerates Fig 9d–f (retrieval CDFs).
func BenchmarkFig9Retrieval(b *testing.B) {
	benchPerf(b, func(b *testing.B, res *experiments.PerfResults) {
		walks := combinedSample(res, func(rp *experiments.RegionPerf) *stats.Sample { return rp.RetrWalks })
		fetch := combinedSample(res, func(rp *experiments.RegionPerf) *stats.Sample { return rp.RetrFetch })
		b.ReportMetric(walks.Percentile(50), "walks-p50-s")
		b.ReportMetric(fetch.Percentile(50), "fetch-p50-s")
	})
}

// BenchmarkFig10Stretch regenerates Fig 10 (stretch CDFs).
func BenchmarkFig10Stretch(b *testing.B) {
	benchPerf(b, func(b *testing.B, res *experiments.PerfResults) {
		st := combinedSample(res, func(rp *experiments.RegionPerf) *stats.Sample { return rp.Stretch })
		stNB := combinedSample(res, func(rp *experiments.RegionPerf) *stats.Sample { return rp.StretchNoBitswap })
		b.ReportMetric(st.Percentile(50), "stretch-p50")
		b.ReportMetric(stNB.Percentile(50), "stretch-nobitswap-p50")
	})
}

// benchDeploy runs a small §5 analysis.
func benchDeploy(b *testing.B, report func(*testing.B, *experiments.DeployResults)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res := experiments.RunDeployment(experiments.DeployConfig{
			PopulationSize: 6000, CrawlNetworkSize: 200, CrawlEpochs: 3,
			Scale: 0.0005, Seed: 7,
		})
		report(b, res)
	}
}

// BenchmarkTable2ASConcentration regenerates Table 2.
func BenchmarkTable2ASConcentration(b *testing.B) {
	benchDeploy(b, func(b *testing.B, res *experiments.DeployResults) {
		b.ReportMetric(100*res.Pop.AS.TopShare(10), "top10-AS-%")
		if res.Table2() == "" {
			b.Fatal("empty table")
		}
	})
}

// BenchmarkTable3CloudShare regenerates Table 3.
func BenchmarkTable3CloudShare(b *testing.B) {
	benchDeploy(b, func(b *testing.B, res *experiments.DeployResults) {
		b.ReportMetric(100*res.Pop.CloudShare(), "cloud-%")
	})
}

// BenchmarkFig4aCrawlTimeSeries regenerates Fig 4a.
func BenchmarkFig4aCrawlTimeSeries(b *testing.B) {
	benchDeploy(b, func(b *testing.B, res *experiments.DeployResults) {
		last := res.Epochs[len(res.Epochs)-1]
		b.ReportMetric(float64(last.Dialable), "dialable")
		b.ReportMetric(float64(last.Undialable), "undialable")
	})
}

// BenchmarkFig5PeerGeo regenerates Fig 5.
func BenchmarkFig5PeerGeo(b *testing.B) {
	benchDeploy(b, func(b *testing.B, res *experiments.DeployResults) {
		counts := res.Pop.CountryCounts()
		b.ReportMetric(100*float64(counts["US"])/float64(len(res.Pop.Peers)), "US-%")
	})
}

// BenchmarkFig7aReliable regenerates Fig 7a.
func BenchmarkFig7aReliable(b *testing.B) {
	benchDeploy(b, func(b *testing.B, res *experiments.DeployResults) {
		reliable := 0
		for _, p := range res.Pop.Peers {
			if p.Reliable {
				reliable++
			}
		}
		b.ReportMetric(100*float64(reliable)/float64(len(res.Pop.Peers)), "reliable-%")
	})
}

// BenchmarkFig7bUnreachable regenerates Fig 7b.
func BenchmarkFig7bUnreachable(b *testing.B) {
	benchDeploy(b, func(b *testing.B, res *experiments.DeployResults) {
		unreachable := 0
		for _, p := range res.Pop.Peers {
			if !p.Dialable {
				unreachable++
			}
		}
		b.ReportMetric(100*float64(unreachable)/float64(len(res.Pop.Peers)), "unreachable-%")
	})
}

// BenchmarkFig7cPeerIDClustering regenerates Fig 7c.
func BenchmarkFig7cPeerIDClustering(b *testing.B) {
	benchDeploy(b, func(b *testing.B, res *experiments.DeployResults) {
		perIP := res.Pop.PeersPerIP()
		singles := 0
		for _, n := range perIP {
			if n == 1 {
				singles++
			}
		}
		b.ReportMetric(100*float64(singles)/float64(len(perIP)), "single-peer-IPs-%")
	})
}

// BenchmarkFig7dASDistribution regenerates Fig 7d.
func BenchmarkFig7dASDistribution(b *testing.B) {
	benchDeploy(b, func(b *testing.B, res *experiments.DeployResults) {
		byRank := res.Pop.IPsPerASRank()
		b.ReportMetric(float64(byRank[1]), "rank1-IPs")
	})
}

// BenchmarkFig8ChurnCDF regenerates Fig 8.
func BenchmarkFig8ChurnCDF(b *testing.B) {
	benchDeploy(b, func(b *testing.B, res *experiments.DeployResults) {
		obs := res.Timeline.SessionObservations()
		s := stats.NewSample()
		for _, o := range obs {
			s.Add(o.Uptime.Hours())
		}
		b.ReportMetric(100*s.FractionBelow(8), "under-8h-%")
	})
}

// benchGateway runs a small §6.3 experiment.
func benchGateway(b *testing.B, report func(*testing.B, *experiments.GatewayResults)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res := experiments.RunGateway(experiments.GatewayConfig{
			NetworkSize: 40, Objects: 120, Requests: 1200, TraceOnly: 30000,
			Scale: 0.0008, Seed: 17,
		})
		report(b, res)
	}
}

// BenchmarkTable5GatewayTiers regenerates Table 5.
func BenchmarkTable5GatewayTiers(b *testing.B) {
	benchGateway(b, func(b *testing.B, res *experiments.GatewayResults) {
		var total, nginx, node int
		for tier, s := range res.Tiers {
			total += s.Requests
			switch tier {
			case gateway.TierNginx:
				nginx = s.Requests
			case gateway.TierNodeStore:
				node = s.Requests
			}
		}
		b.ReportMetric(100*float64(nginx)/float64(total), "nginx-hit-%")
		b.ReportMetric(100*float64(nginx+node)/float64(total), "combined-hit-%")
	})
}

// BenchmarkFig4bDiurnal regenerates Fig 4b.
func BenchmarkFig4bDiurnal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cat := gwload.NewCatalog(gwload.CatalogConfig{NumObjects: 200, Seed: 17})
		reqs := gwload.GenerateTrace(cat, gwload.TraceConfig{NumRequests: 50000, Seed: 18})
		var byHour [24]int
		for _, r := range reqs {
			byHour[r.Time.UTC().Hour()]++
		}
		min, max := byHour[0], byHour[0]
		for _, c := range byHour {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		b.ReportMetric(float64(max)/float64(min), "peak-to-trough")
	}
}

// BenchmarkFig6UserGeo regenerates Fig 6.
func BenchmarkFig6UserGeo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cat := gwload.NewCatalog(gwload.CatalogConfig{NumObjects: 200, Seed: 17})
		reqs := gwload.GenerateTrace(cat, gwload.TraceConfig{NumRequests: 50000, Seed: 19})
		us := 0
		for _, r := range reqs {
			if r.Country == "US" {
				us++
			}
		}
		b.ReportMetric(100*float64(us)/float64(len(reqs)), "US-%")
	}
}

// BenchmarkFig11GatewayDistributions regenerates Fig 11a.
func BenchmarkFig11GatewayDistributions(b *testing.B) {
	benchGateway(b, func(b *testing.B, res *experiments.GatewayResults) {
		lat := stats.NewSample()
		for _, e := range res.Log {
			if !e.Err() {
				lat.Add(e.Latency.Seconds())
			}
		}
		b.ReportMetric(100*lat.FractionBelow(0.25), "under-250ms-%")
	})
}

// BenchmarkFig11CacheTimeline regenerates Fig 11b.
func BenchmarkFig11CacheTimeline(b *testing.B) {
	benchGateway(b, func(b *testing.B, res *experiments.GatewayResults) {
		if res.Fig11b() == "" {
			b.Fatal("empty series")
		}
	})
}

// --- DESIGN.md §5 ablations ---

// BenchmarkAblationReplication sweeps the replication factor k.
func BenchmarkAblationReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RunReplicationSweep(
			experiments.AblationConfig{NetworkSize: 180, Iterations: 3, Scale: 0.001, Seed: 23},
			[]int{5, 20}, 0.5)
		b.ReportMetric(pts[len(pts)-1].SurvivalRate*100, "k20-survival-%")
	}
}

// BenchmarkAblationAlpha sweeps lookup concurrency.
func BenchmarkAblationAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RunAlphaSweep(
			experiments.AblationConfig{NetworkSize: 200, Iterations: 3, Scale: 0.001, Seed: 23},
			[]int{1, 3})
		b.ReportMetric(pts[0].RetrMedian.Seconds(), "alpha1-retr-s")
		b.ReportMetric(pts[1].RetrMedian.Seconds(), "alpha3-retr-s")
	}
}

// BenchmarkAblationParallelDiscovery compares serial and parallel
// Bitswap/DHT discovery (§6.2).
func BenchmarkAblationParallelDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RunParallelDiscovery(
			experiments.AblationConfig{NetworkSize: 200, Iterations: 2, Scale: 0.001, Seed: 23})
		b.ReportMetric(pts[0].RetrMedian.Seconds(), "serial-retr-s")
		b.ReportMetric(pts[1].RetrMedian.Seconds(), "parallel-retr-s")
	}
}

// BenchmarkAblationClientServerSplit compares the post-v0.5 DHT
// client/server split against polluted routing tables (§6.4).
func BenchmarkAblationClientServerSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RunClientServerSplit(
			experiments.AblationConfig{NetworkSize: 180, Iterations: 3, Scale: 0.001, Seed: 23})
		for _, p := range pts {
			if p.SplitEnabled {
				b.ReportMetric(p.PubMedian.Seconds(), "split-pub-s")
			} else {
				b.ReportMetric(p.PubMedian.Seconds(), "nosplit-pub-s")
			}
		}
	}
}

// BenchmarkAblationGatewayCacheSize sweeps the nginx cache size.
func BenchmarkAblationGatewayCacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RunGatewayCacheSweep(
			experiments.AblationConfig{Scale: 0.0008, Seed: 23},
			[]int64{4 << 20, 32 << 20})
		b.ReportMetric(100*pts[len(pts)-1].NginxHit, "bigcache-hit-%")
	}
}

// --- content-routing subsystem ---

// BenchmarkRoutingComparison races the four content routers on one
// simulated network under the churn timeline, reporting per-retrieval
// routing message counts and latency for the baseline walk vs the
// accelerated one-hop client.
func BenchmarkRoutingComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunRoutingComparison(experiments.RoutingConfig{
			NetworkSize: 200, Objects: 3, Ticks: 2, Window: 8 * time.Hour, Scale: 0.0005, Seed: 42,
		})
		dht := res.Router(routing.KindDHT)
		accel := res.Router(routing.KindAccelerated)
		b.ReportMetric(dht.RetrMsgs.Mean(), "dht-retr-msgs")
		b.ReportMetric(accel.RetrMsgs.Mean(), "accel-retr-msgs")
		b.ReportMetric(dht.RetrLatency.Percentile(50), "dht-retr-p50-s")
		b.ReportMetric(accel.RetrLatency.Percentile(50), "accel-retr-p50-s")
		b.ReportMetric(dht.RetrWantHaves.Mean(), "dht-want-haves")
		b.ReportMetric(accel.RetrWantHaves.Mean(), "accel-want-haves")
		b.ReportMetric(dht.RetrTTFP.Percentile(50), "dht-time-to-first-provider-s")
		b.ReportMetric(accel.RetrTTFP.Percentile(50), "accel-time-to-first-provider-s")
	}
}

// BenchmarkSessionRoutingUnderChurn compares broadcast-vs-routed
// Bitswap sessions under a heavier churn timeline: WANT-HAVE fan-out,
// how many sessions the router fed directly, the mid-session fail-overs
// that replaced churned providers, and the network-wide RPC budget by
// category (so background republish/refresh traffic lands in the
// uploaded BENCH_PR.json next to the per-lookup metrics). The indexer
// runs as a sharded 2×2 replica fleet, so the budget carries its
// gossip traffic, and a second small run with each shard's primary
// taken down mid-window reports the indexer-loss fail-over cost.
func BenchmarkSessionRoutingUnderChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunRoutingComparison(experiments.RoutingConfig{
			NetworkSize: 200, Objects: 3, Ticks: 2, Window: 8 * time.Hour,
			ChurnAmplitude: 3, IndexerShards: 2, IndexerReplicas: 2,
			Scale: 0.0005, Seed: 11,
		})
		dht := res.Router(routing.KindDHT)
		accel := res.Router(routing.KindAccelerated)
		b.ReportMetric(dht.RetrWantHaves.Mean(), "dht-want-haves")
		b.ReportMetric(accel.RetrWantHaves.Mean(), "accel-want-haves")
		b.ReportMetric(float64(accel.RoutedSessions), "routed-sessions")
		b.ReportMetric(accel.FallbackRate(), "accel-fallback-rate")
		b.ReportMetric(float64(dht.Failures+accel.Failures), "failures")
		// Batched republish: RPCs per cycle stay bounded by the distinct
		// target-peer count instead of CIDs x (walk + store fan-out).
		b.ReportMetric(dht.RepubRPCs.Mean(), "dht-republish-rpcs-per-cycle")
		ix := res.Router(routing.KindIndexer)
		b.ReportMetric(ix.RepubRPCs.Mean(), "indexer-republish-rpcs-per-cycle")
		// Streaming discovery: the walk baseline's time-to-first-provider
		// vs the full-lookup wait retrieval used to block on.
		b.ReportMetric(dht.RetrTTFP.Percentile(50), "dht-time-to-first-provider-s")
		b.ReportMetric(dht.RetrLookupFull.Percentile(50), "dht-blocking-lookup-s")
		// Span-derived discovery tail across every router's traced
		// retrievals — the delay-decomposition headline the telemetry
		// subsystem adds, gated by benchdiff against the baseline.
		b.ReportMetric(telemetry.DiscoverP99(res.Traces).Seconds(), "discover-p99-s")
		b.ReportMetric(float64(res.Budget.Requests), "rpc-total")
		b.ReportMetric(float64(res.Budget.Category(transport.CatLookup)), "rpc-lookup")
		b.ReportMetric(float64(res.Budget.Category(transport.CatPublish)), "rpc-publish")
		b.ReportMetric(float64(res.Budget.Category(transport.CatRepublish)), "rpc-republish")
		b.ReportMetric(float64(res.Budget.Category(transport.CatRefresh)), "rpc-refresh")
		b.ReportMetric(float64(res.Budget.Category(transport.CatWant)), "rpc-want")
		b.ReportMetric(float64(res.Budget.Category(transport.CatGossip)), "rpc-gossip")

		// Indexer-loss fail-over cost: same churn amplitude, each shard's
		// primary replica offline from mid-window — the replica groups
		// must keep the hit rate up, at the price of one extra (failed)
		// hop per lookup that lands on a dead primary.
		fo := experiments.RunRoutingComparison(experiments.RoutingConfig{
			NetworkSize: 150, Objects: 3, Ticks: 2, Window: 8 * time.Hour,
			ChurnAmplitude: 3, IndexerShards: 2, IndexerReplicas: 2,
			IndexerOutageAt: 2 * time.Hour,
			Kinds:           []routing.Kind{routing.KindIndexer},
			NoRepublish:     true, NoRefresh: true,
			Scale: 0.0005, Seed: 11,
		})
		foIx := fo.Router(routing.KindIndexer)
		foLast := foIx.Ticks[len(foIx.Ticks)-1]
		b.ReportMetric(foLast.IndexerHit, "ix-hit-after-outage")
		b.ReportMetric(foIx.RetrMsgs.Mean(), "ix-failover-retr-msgs")
		b.ReportMetric(float64(foIx.Failures), "ix-failover-failures")
	}
}

// BenchmarkScenario20kChurnEventDriven replays a paper-scale churn
// scenario — 20k DHT servers, an 8 h simulated window, per-peer session
// transitions — on the discrete-event scheduler, and reports the wall
// clock one scenario costs as scenario-wall-ms: the headline metric
// benchdiff gates so the engine cannot quietly regress back toward
// per-tick sweep costs. Stalls must report zero (every wait on the
// workload path instrumented) for the run to be trustworthy; -short
// shrinks the population for quick local sweeps.
func BenchmarkScenario20kChurnEventDriven(b *testing.B) {
	n := 20000
	if testing.Short() {
		n = 2000
	}
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res := experiments.RunRoutingComparison(experiments.RoutingConfig{
			NetworkSize: n, Objects: 2, Ticks: 2, Window: 8 * time.Hour,
			ChurnAmplitude: 2,
			Kinds:          []routing.Kind{routing.KindDHT, routing.KindIndexer},
			NoRefresh:      true,
			EventDriven:    true,
			Seed:           77,
		})
		b.ReportMetric(float64(time.Since(start).Milliseconds()), "scenario-wall-ms")
		b.ReportMetric(float64(res.SchedEvents), "sched-events")
		b.ReportMetric(float64(res.SchedStalls), "sched-stalls")
		b.ReportMetric(float64(res.Budget.Requests), "rpc-total-20k")
	}
}

// BenchmarkLossDegradation replays the adversarial loss sweep (four
// retrieval ticks raising the per-transit loss rate 0% -> 30%) on the
// event-driven scheduler and reports the hit rate at the sweep's
// endpoints, averaged across the four routers, plus the RPC budget's
// drop/retry totals. loss30-hit-rate is the degradation headline
// benchdiff gates (higher-is-better): a routing change that gets worse
// at absorbing loss fails the gate even if the lossless numbers hold.
func BenchmarkLossDegradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.LossSweepScenario(42)
		var first, last, n float64
		for _, rp := range res.Routers {
			if len(rp.Ticks) == 0 {
				continue
			}
			first += rp.Ticks[0].HitRate()
			last += rp.Ticks[len(rp.Ticks)-1].HitRate()
			n++
		}
		b.ReportMetric(first/n, "loss0-hit-rate")
		b.ReportMetric(last/n, "loss30-hit-rate")
		b.ReportMetric(float64(res.Budget.Dropped), "rpc-dropped-total")
		b.ReportMetric(float64(res.Budget.Retried), "rpc-retried-total")
		b.ReportMetric(float64(res.SchedStalls), "sched-stalls-loss")
	}
}

// BenchmarkGatewayFleetFlashCrowd replays the viral-CID flash crowd
// (one CID at 100x the steady request rate) through the gateway fleet
// — consistent-hash placement, shared cache tier, admission control —
// on the event-driven scheduler, with the origin host on a pack-engine
// blockstore. Three headline metrics are benchdiff-gated:
// fleet-p99-ttfb-ms is the steady phase's p99 time-to-first-byte (the
// steady phase exercises the full retrieval cascade; the viral phase's
// p99 is cache-dominated and would gate nothing), fleet-cache-hit-rate
// is the whole-run fleet hit rate (higher-is-better), and
// fleet-origin-rpc-amp is the viral phase's origin-RPC rate as a
// multiple of steady — the sub-linear amplification the fleet exists
// to deliver.
func BenchmarkGatewayFleetFlashCrowd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFleetScenario(experiments.FleetScenarioConfig{
			OriginDir: b.TempDir(),
		})
		if res.SchedStalls != 0 {
			b.Fatalf("scheduler stalled %d times; run untrustworthy", res.SchedStalls)
		}
		steady := res.Phases[0]
		b.ReportMetric(steady.TTFB.Percentile(99)*1000, "fleet-p99-ttfb-ms")
		b.ReportMetric(res.Stats.CacheHitRate(), "fleet-cache-hit-rate")
		b.ReportMetric(res.OriginRPCAmp, "fleet-origin-rpc-amp")
		b.ReportMetric(res.RequestAmp, "fleet-request-amp")
		b.ReportMetric(float64(res.Stats.Shed), "fleet-shed-total")
	}
}

// BenchmarkAcceleratedLookup measures one-hop lookups against a
// converged snapshot (near-zero churn amplitude): the best case the
// accelerated client buys. The reported metric comes from the same
// runs the loop times.
func BenchmarkAcceleratedLookup(b *testing.B) {
	msgs := 0.0
	for i := 0; i < b.N; i++ {
		res := experiments.RunRoutingComparison(experiments.RoutingConfig{
			NetworkSize: 150, Objects: 2, Ticks: 1, Window: 2 * time.Hour,
			ChurnAmplitude: 0.01, Scale: 0.0005, Seed: int64(7 + i),
		})
		msgs = res.Router(routing.KindAccelerated).RetrMsgs.Mean()
	}
	b.ReportMetric(msgs, "retr-msgs")
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkCidSum measures CID computation over 256 KiB chunks.
func BenchmarkCidSum(b *testing.B) {
	data := bytes.Repeat([]byte{1}, 256*1024)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cid.Sum(multicodec.Raw, data)
	}
}

// BenchmarkDagBuild measures importing a 4 MiB file.
func BenchmarkDagBuild(b *testing.B) {
	data := bytes.Repeat([]byte{2}, 4<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := block.NewMemStore()
		if _, err := merkledag.NewBuilder(store, 0, 0).Add(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDagAssemble measures reassembling a 4 MiB DAG.
func BenchmarkDagAssemble(b *testing.B) {
	data := bytes.Repeat([]byte{3}, 4<<20)
	store := block.NewMemStore()
	root, err := merkledag.NewBuilder(store, 0, 0).Add(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := merkledag.Assemble(store, root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPackStoreServe loads the pack blockstore with a million
// small blocks — the regime the gateway serves from (§5: many tiny
// objects, random access) — and measures put throughput and random-Get
// latency. A scaled-down FSStore run rides along for comparison: one
// file per block cannot hold a million blocks in CI, which is exactly
// the gap the pack engine closes.
func BenchmarkPackStoreServe(b *testing.B) {
	const (
		packBlocks = 1_000_000
		fsBlocks   = 20_000
		blockSize  = 256
		getOps     = 50_000
	)
	fill := func(s block.Store, n int) ([]cid.Cid, float64) {
		cids := make([]cid.Cid, n)
		buf := make([]byte, blockSize)
		start := time.Now()
		for j := range cids {
			buf[0], buf[1], buf[2], buf[3] = byte(j), byte(j>>8), byte(j>>16), byte(j>>24)
			blk := block.New(multicodec.Raw, buf)
			if err := s.Put(blk); err != nil {
				b.Fatal(err)
			}
			cids[j] = blk.Cid()
		}
		mbps := float64(n*blockSize) / time.Since(start).Seconds() / 1e6
		return cids, mbps
	}
	randomGets := func(s block.Store, cids []cid.Cid) *stats.Sample {
		rng := rand.New(rand.NewSource(42))
		sample := stats.NewSample()
		for k := 0; k < getOps; k++ {
			c := cids[rng.Intn(len(cids))]
			start := time.Now()
			if _, err := s.Get(c); err != nil {
				b.Fatal(err)
			}
			sample.Add(float64(time.Since(start).Microseconds()))
		}
		return sample
	}
	for i := 0; i < b.N; i++ {
		ps, err := block.NewPackStore(b.TempDir(), block.PackConfig{})
		if err != nil {
			b.Fatal(err)
		}
		cids, putMbps := fill(ps, packBlocks)
		if err := ps.Flush(); err != nil {
			b.Fatal(err)
		}
		sample := randomGets(ps, cids)
		b.ReportMetric(putMbps, "pack-put-mbps")
		b.ReportMetric(sample.Percentile(50), "pack-get-p50-us")
		b.ReportMetric(sample.Percentile(99), "pack-get-p99-us")
		ps.Close()

		fs, err := block.NewFSStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		fsCids, fsMbps := fill(fs, fsBlocks)
		fsSample := randomGets(fs, fsCids)
		b.ReportMetric(fsMbps, "fs-put-mbps")
		b.ReportMetric(fsSample.Percentile(99), "fs-get-p99-us")
	}
}

// BenchmarkKBucketNearest measures closest-peer selection over a full
// routing table.
func BenchmarkKBucketNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	self := peer.MustNewIdentity(rng)
	table := kbucket.NewTable(self.ID, 20)
	for i := 0; i < 500; i++ {
		table.Add(peer.MustNewIdentity(rng).ID)
	}
	key := kbucket.KeyForBytes([]byte("target"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = table.NearestPeers(key, 20)
	}
}

// BenchmarkWireMarshal measures message encode+decode round trips.
func BenchmarkWireMarshal(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var peers []wire.PeerInfo
	for i := 0; i < 20; i++ {
		peers = append(peers, wire.PeerInfo{ID: peer.MustNewIdentity(rng).ID})
	}
	msg := wire.Message{Type: wire.TNodes, Key: bytes.Repeat([]byte{9}, 34), Peers: peers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := msg.Marshal()
		if _, err := wire.Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetrieveEndToEnd measures one simulated retrieval.
func BenchmarkRetrieveEndToEnd(b *testing.B) {
	res := experiments.RunPerformance(experiments.PerfConfig{
		NetworkSize: 200, IterationsPer: 1, Scale: 0.0005, Seed: 5,
	})
	retr := combinedSample(res, func(rp *experiments.RegionPerf) *stats.Sample { return rp.RetrOverall })
	b.ReportMetric(retr.Median(), "retr-p50-s")
	// The end-to-end loop itself:
	ctxEnsureUsed()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunPerformance(experiments.PerfConfig{
			NetworkSize: 120, IterationsPer: 1, Scale: 0.0005, Seed: int64(5 + i),
		})
	}
}

func ctxEnsureUsed() context.Context { return context.Background() }
